"""The §5.2 Montage mosaic workflow.

"Our second application, Montage, generates large astronomical image
mosaics by composing multiple small images ... a modest-scale
computation that produces a 3°×3° mosaic around galaxy M16.  There are
about 487 input images and 2,200 overlapping image sections between
them."

Pipeline (§5.2, with the co-add decomposed into two steps "to enhance
concurrency"):

=========== ========================= ======= ==========
stage       role                      tasks   secs/task
=========== ========================= ======= ==========
mProject    reproject each image        487     32.0
mOverlap    compute overlap list          1     20.0
mDiff       difference per overlap     2200      3.2
mFit        plane fit per difference   2200      1.6
mBgModel    global background model       1     40.0
mBackground correct each image          487      4.0
mAddTile    first co-add step (tiles)   121     21.0
mAdd        final co-add (serial)         1    250.0
=========== ========================= ======= ==========

"The second co-add step was only parallelized in the MPI version; thus
Falkon performs poorly in this step" — the final mAdd is a single long
task here, exactly that behaviour.  The durations are not printed in
the paper; they are chosen so Swift+Falkon lands near the reported
1 067 s total excluding the final mAdd.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.graph import Workflow
from repro.sim import RngStreams
from repro.types import TaskSpec

__all__ = ["MontageShape", "montage_workflow", "MONTAGE_STAGE_ORDER"]

MONTAGE_STAGE_ORDER: tuple[str, ...] = (
    "mProject",
    "mOverlap",
    "mDiff",
    "mFit",
    "mBgModel",
    "mBackground",
    "mAddTile",
    "mAdd",
)


@dataclass(frozen=True)
class MontageShape:
    """Size parameters of the mosaic computation."""

    images: int = 487
    overlaps: int = 2200
    tiles: int = 121
    project_secs: float = 32.0
    overlap_secs: float = 20.0
    diff_secs: float = 3.2
    fit_secs: float = 1.6
    bgmodel_secs: float = 40.0
    background_secs: float = 4.0
    tile_secs: float = 21.0
    final_add_secs: float = 250.0

    def __post_init__(self) -> None:
        if self.images <= 0 or self.overlaps <= 0 or self.tiles <= 0:
            raise ValueError("counts must be positive")


def montage_workflow(shape: MontageShape | None = None, seed: int = 0) -> Workflow:
    """Build the M16 mosaic DAG.

    Overlap pairs are drawn reproducibly from the image set: each mDiff
    depends on the mProject tasks of its two images, so the diff stage
    starts streaming while projection is still running — the dynamic
    behaviour Swift exploits.
    """
    shape = shape or MontageShape()
    rng = RngStreams(seed).stream("montage-overlaps")
    workflow = Workflow("montage-m16")

    project_ids = []
    for i in range(shape.images):
        tid = f"mProject-{i:04d}"
        workflow.add_task(
            TaskSpec(tid, command="mProject", duration=shape.project_secs, stage="mProject")
        )
        project_ids.append(tid)

    # The overlap computation examines all image headers.
    workflow.add_task(
        TaskSpec("mOverlap-0000", command="mOverlap", duration=shape.overlap_secs,
                 stage="mOverlap"),
        after=project_ids,
    )

    fit_ids = []
    for k in range(shape.overlaps):
        a, b = rng.choice(shape.images, size=2, replace=False)
        diff_id = f"mDiff-{k:05d}"
        workflow.add_task(
            TaskSpec(diff_id, command="mDiff", duration=shape.diff_secs, stage="mDiff"),
            after=[f"mProject-{a:04d}", f"mProject-{b:04d}", "mOverlap-0000"],
        )
        fit_id = f"mFit-{k:05d}"
        workflow.add_task(
            TaskSpec(fit_id, command="mFit", duration=shape.fit_secs, stage="mFit"),
            after=[diff_id],
        )
        fit_ids.append(fit_id)

    workflow.add_task(
        TaskSpec("mBgModel-0000", command="mBgModel", duration=shape.bgmodel_secs,
                 stage="mBgModel"),
        after=fit_ids,
    )

    background_ids = []
    for i in range(shape.images):
        tid = f"mBackground-{i:04d}"
        workflow.add_task(
            TaskSpec(tid, command="mBackground", duration=shape.background_secs,
                     stage="mBackground"),
            after=[f"mProject-{i:04d}", "mBgModel-0000"],
        )
        background_ids.append(tid)

    tile_ids = []
    for t in range(shape.tiles):
        tid = f"mAddTile-{t:03d}"
        # Each tile co-adds a slice of corrected images.
        per_tile = -(-shape.images // shape.tiles)
        deps = background_ids[t * per_tile : (t + 1) * per_tile] or background_ids[-1:]
        workflow.add_task(
            TaskSpec(tid, command="mAddTile", duration=shape.tile_secs, stage="mAddTile"),
            after=deps,
        )
        tile_ids.append(tid)

    workflow.add_task(
        TaskSpec("mAdd-0000", command="mAdd", duration=shape.final_add_secs, stage="mAdd"),
        after=tile_ids,
    )
    return workflow.validate()
