"""Table 5: the Swift application catalog.

"Swift has been applied to applications in the physical sciences,
biological sciences, social sciences, humanities, computer science,
and science education" — Table 5 characterises them by task count and
stage count; "all could benefit from Falkon".

The catalog doubles as a workload generator: :meth:`SwiftApplication
.representative_workload` emits a sleep-task batch of representative
size per stage, so any Table 5 row can be replayed against Falkon or a
baseline (see ``benchmarks/test_table5_applications.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import TaskSpec

__all__ = ["SwiftApplication", "SWIFT_APPLICATIONS"]


@dataclass(frozen=True)
class SwiftApplication:
    """One Table 5 row."""

    name: str
    #: Task count as printed (e.g. "500K", "100s", "40K, 500K").
    tasks_label: str
    #: Stage count as printed (e.g. "1", "3~6").
    stages_label: str
    #: Representative numeric task count for replays.
    typical_tasks: int
    #: Representative numeric stage count.
    typical_stages: int

    def __post_init__(self) -> None:
        if self.typical_tasks <= 0 or self.typical_stages <= 0:
            raise ValueError("typical counts must be positive")

    def representative_workload(
        self, scale: float = 1.0, seconds_per_task: float = 1.0
    ) -> list[list[TaskSpec]]:
        """A stage-structured sleep workload shaped like this app.

        ``scale`` shrinks the task count (Table 5 rows reach 500 K
        tasks; replays usually use a fraction).
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        total = max(self.typical_stages, int(self.typical_tasks * scale))
        per_stage = max(1, total // self.typical_stages)
        stages = []
        for s in range(self.typical_stages):
            stages.append(
                [
                    TaskSpec.sleep(
                        seconds_per_task,
                        task_id=f"{self.name[:8].replace(' ', '')}-s{s}-t{i:06d}",
                        stage=f"stage-{s}",
                    )
                    for i in range(per_stage)
                ]
            )
        return stages


#: Table 5, row for row.
SWIFT_APPLICATIONS: tuple[SwiftApplication, ...] = (
    SwiftApplication("ATLAS: High Energy Physics Event Simulation", "500K", "1", 500_000, 1),
    SwiftApplication("fMRI DBIC: AIRSN Image Processing", "100s", "12", 300, 12),
    SwiftApplication("FOAM: Ocean/Atmosphere Model", "2000", "3", 2_000, 3),
    SwiftApplication("GADU: Genomics", "40K", "4", 40_000, 4),
    SwiftApplication("HNL: fMRI Aphasia Study", "500", "4", 500, 4),
    SwiftApplication("NVO/NASA: Photorealistic Montage/Morphology", "1000s", "16", 3_000, 16),
    SwiftApplication("QuarkNet/I2U2: Physics Science Education", "10s", "3~6", 30, 4),
    SwiftApplication("RadCAD: Radiology Classifier Training", "1000s", "5", 3_000, 5),
    SwiftApplication("SIDGrid: EEG Wavelet Processing, Gaze Analysis", "100s", "20", 300, 20),
    SwiftApplication("SDSS: Coadd, Cluster Search", "40K, 500K", "2, 8", 40_000, 2),
    SwiftApplication("SDSS: Stacking, AstroPortal", "10Ks ~ 100Ks", "2 ~ 4", 50_000, 3),
    SwiftApplication("MolDyn: Molecular Dynamics", "1Ks ~ 20Ks", "8", 10_000, 8),
)
