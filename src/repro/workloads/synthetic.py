"""Synthetic sleep-task workloads (§4.1–§4.5 microbenchmarks)."""

from __future__ import annotations

from typing import Optional

from repro.types import DataLocation, DataRef, TaskSpec

__all__ = ["sleep_workload", "uniform_workload", "data_workload"]


def sleep_workload(n: int, seconds: float = 0.0, prefix: str = "sleep") -> list[TaskSpec]:
    """*n* ``sleep seconds`` tasks — the paper's canonical benchmark."""
    if n <= 0:
        raise ValueError("n must be positive")
    return [TaskSpec.sleep(seconds, task_id=f"{prefix}-{i:07d}") for i in range(n)]


def uniform_workload(
    n: int, seconds: float, stage: str = "", prefix: str = "task"
) -> list[TaskSpec]:
    """*n* equal-length tasks tagged with a stage label."""
    if n <= 0:
        raise ValueError("n must be positive")
    return [
        TaskSpec.sleep(seconds, task_id=f"{prefix}-{i:07d}", stage=stage) for i in range(n)
    ]


def data_workload(
    n: int,
    data_bytes: int,
    location: DataLocation,
    write: bool,
    compute_seconds: float = 0.0,
    prefix: str = "io",
) -> list[TaskSpec]:
    """The §4.2 data-access tasks: read *data_bytes* (and optionally
    write the same amount) from the given location around a compute
    phase."""
    if n <= 0:
        raise ValueError("n must be positive")
    if data_bytes < 0:
        raise ValueError("data_bytes must be >= 0")
    tasks = []
    for i in range(n):
        reads = (DataRef(f"{prefix}-{i}-in", data_bytes, location),)
        writes = (
            (DataRef(f"{prefix}-{i}-out", data_bytes, location),) if write else ()
        )
        tasks.append(
            TaskSpec(
                task_id=f"{prefix}-{i:06d}",
                command="stage-and-compute",
                duration=compute_seconds,
                reads=reads,
                writes=writes,
            )
        )
    return tasks
