"""The §4.6 18-stage synthetic provisioning workload (Figure 11).

Paper constraints, all honoured exactly:

* 18 sequential stages, 1 000 tasks in total, 17 820 CPU-seconds;
* "exponential ramp up in the number of tasks for the first few
  stages, a sudden drop at stage 8, and a sudden surge of many tasks
  in stages 9 and 10, another drop in stage 11, a modest increase in
  stage 12, followed by a linear decrease in stages 13 and 14, and
  finally an exponential decrease until the last stage has only a
  single task";
* "all tasks run for 60 secs except those in stages 8, 9, and 10,
  which run for 120, 6, and 12 secs, respectively";
* at most 32 machines are needed per stage when each task maps to its
  own machine.

The exact per-stage counts are not printed in the paper; the counts
below realise the described shape while matching the stated totals
(sum = 1 000 tasks, Σ count·duration = 17 820 CPU-s).  The resulting
ideal 32-machine makespan is 1 284 s vs the paper's 1 260 s (<2 %
difference), recorded as a known deviation in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.dag.graph import Workflow
from repro.types import TaskSpec

__all__ = [
    "STAGE_TASK_COUNTS",
    "STAGE_DURATIONS",
    "stage18_workload",
    "stage18_machines_needed",
    "stage18_summary",
    "stage18_stage_lists",
]

#: Tasks per stage (sums to 1 000).
STAGE_TASK_COUNTS: tuple[int, ...] = (
    1, 2, 4, 8, 16, 32, 64,  # exponential ramp-up
    1,                       # sudden drop (long tasks)
    560, 250,                # surge of many short tasks
    2,                       # drop
    20,                      # modest increase
    15, 10,                  # linear decrease
    8, 4, 2, 1,              # exponential decrease to a single task
)

#: Task length per stage in seconds (Σ count·duration = 17 820).
STAGE_DURATIONS: tuple[float, ...] = (
    60, 60, 60, 60, 60, 60, 60,
    120,
    6, 12,
    60,
    60,
    60, 60,
    60, 60, 60, 60,
)

assert len(STAGE_TASK_COUNTS) == len(STAGE_DURATIONS) == 18
assert sum(STAGE_TASK_COUNTS) == 1000
assert sum(c * d for c, d in zip(STAGE_TASK_COUNTS, STAGE_DURATIONS)) == 17820


def stage18_stage_lists() -> list[list[TaskSpec]]:
    """The workload as one task list per stage."""
    stages = []
    for stage_index, (count, duration) in enumerate(
        zip(STAGE_TASK_COUNTS, STAGE_DURATIONS), start=1
    ):
        stages.append(
            [
                TaskSpec.sleep(
                    duration,
                    task_id=f"s{stage_index:02d}-t{i:04d}",
                    stage=f"stage-{stage_index:02d}",
                )
                for i in range(count)
            ]
        )
    return stages


def stage18_workload() -> Workflow:
    """The workload as a DAG: every stage waits for the previous one.

    The paper runs the stages strictly in sequence (Figure 11 plots
    per-stage demand over time), so each stage-*k* task depends on all
    stage-*k−1* tasks.  To keep the edge count linear, a zero-length
    barrier task joins consecutive stages.
    """
    workflow = Workflow("18-stage-synthetic")
    previous_barrier: list[str] = []
    for stage_index, specs in enumerate(stage18_stage_lists(), start=1):
        ids = []
        for spec in specs:
            workflow.add_task(spec, after=previous_barrier)
            ids.append(spec.task_id)
        barrier = TaskSpec(
            task_id=f"s{stage_index:02d}-barrier",
            command="barrier",
            duration=0.0,
            stage=f"stage-{stage_index:02d}",
        )
        workflow.add_task(barrier, after=ids)
        previous_barrier = [barrier.task_id]
    return workflow.validate()


def stage18_machines_needed(cap: int = 32) -> list[int]:
    """Figure 11's second series: machines per stage, capped at *cap*."""
    if cap <= 0:
        raise ValueError("cap must be positive")
    return [min(count, cap) for count in STAGE_TASK_COUNTS]


def stage18_summary() -> dict[str, float]:
    """Headline numbers the paper states for this workload."""
    return {
        "stages": 18.0,
        "tasks": float(sum(STAGE_TASK_COUNTS)),
        "cpu_seconds": float(
            sum(c * d for c, d in zip(STAGE_TASK_COUNTS, STAGE_DURATIONS))
        ),
        "ideal_makespan_32": ideal_makespan_sequential(32),
    }


def ideal_makespan_sequential(machines: int) -> float:
    """Ideal time with sequential stages on *machines* nodes:
    Σ ceil(count/machines)·duration."""
    if machines <= 0:
        raise ValueError("machines must be positive")
    total = 0.0
    for count, duration in zip(STAGE_TASK_COUNTS, STAGE_DURATIONS):
        waves = -(-count // machines)
        total += waves * duration
    return total
