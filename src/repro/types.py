"""Shared task model.

The same :class:`TaskSpec` / :class:`TaskResult` pair flows through both
execution planes:

* in the **simulation plane** a task's ``duration`` and data descriptors
  drive timeout/filesystem models;
* in the **live plane** a task's ``command`` is executed by a real
  executor (subprocess or registered Python callable).

The paper's client "submit" request takes *an array of tasks, each with
working directory, command to execute, arguments, and environment
variables* and returns *an array of outputs, each with the task that
was run, its return code, and optional output strings* (§3.2); the two
dataclasses mirror that contract.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Optional

__all__ = [
    "TaskState",
    "DataLocation",
    "DataRef",
    "TaskSpec",
    "TaskResult",
    "TaskTimeline",
    "Bundle",
    "new_task_id",
    "reset_task_ids",
]

_task_counter = itertools.count(1)


def new_task_id(prefix: str = "task") -> str:
    """Return a fresh process-unique task id like ``task-000042``."""
    return f"{prefix}-{next(_task_counter):06d}"


def reset_task_ids() -> None:
    """Reset the id counter (test isolation only)."""
    global _task_counter
    _task_counter = itertools.count(1)


class TaskState(Enum):
    """Lifecycle of a task as observed by the dispatcher."""

    PENDING = "pending"        # created, not yet submitted
    QUEUED = "queued"          # accepted by the dispatcher, in the wait queue
    DISPATCHED = "dispatched"  # sent to an executor
    RUNNING = "running"        # executor reported start (live plane)
    COMPLETED = "completed"    # result delivered, return code 0
    FAILED = "failed"          # result delivered, non-zero / error
    CANCELED = "canceled"      # withdrawn before completion

    @property
    def terminal(self) -> bool:
        """True for states no task ever leaves."""
        return self in (TaskState.COMPLETED, TaskState.FAILED, TaskState.CANCELED)


class DataLocation(Enum):
    """Where a task's data lives (Figure 4's experimental axis)."""

    SHARED = "shared"  # GPFS-like shared filesystem
    LOCAL = "local"    # compute-node local disk


@dataclass(frozen=True)
class DataRef:
    """A named piece of data a task reads or writes.

    ``size_bytes`` drives the filesystem contention model in the
    simulation plane; the live plane treats refs as opaque annotations.
    """

    name: str
    size_bytes: int
    location: DataLocation = DataLocation.SHARED

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")


@dataclass(frozen=True)
class TaskSpec:
    """An executable task.

    Parameters
    ----------
    task_id:
        Unique id; autogenerate with :func:`new_task_id`.
    command:
        Executable (live plane) or a label (simulation plane).
    args:
        Command arguments.
    working_dir, env:
        Execution context, per the paper's submit contract.
    duration:
        Simulated execution time in seconds (simulation plane only).
    reads, writes:
        Data the task stages in/out (Figure 4 experiments, data-aware
        dispatch extension).
    runtime_estimate:
        Client-provided estimate enabling dispatcher→executor bundling
        (§3.4 notes bundling "cannot always be used" without estimates).
    stage:
        Workflow stage label (used by the DAG engine and reports).
    """

    task_id: str
    command: str = "sleep"
    args: tuple[str, ...] = ()
    working_dir: str = "."
    env: tuple[tuple[str, str], ...] = ()
    duration: float = 0.0
    reads: tuple[DataRef, ...] = ()
    writes: tuple[DataRef, ...] = ()
    runtime_estimate: Optional[float] = None
    stage: str = ""

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if self.duration < 0 or not math.isfinite(self.duration):
            raise ValueError(f"duration must be finite and >= 0, got {self.duration}")

    @classmethod
    def sleep(cls, seconds: float, task_id: Optional[str] = None, stage: str = "") -> "TaskSpec":
        """The paper's canonical micro-benchmark task: ``sleep N``."""
        return cls(
            task_id=task_id or new_task_id(),
            command="sleep",
            args=(str(seconds),),
            duration=float(seconds),
            stage=stage,
        )

    def with_id(self, task_id: str) -> "TaskSpec":
        """Copy of this spec under a different id."""
        return replace(self, task_id=task_id)

    @property
    def total_read_bytes(self) -> int:
        return sum(ref.size_bytes for ref in self.reads)

    @property
    def total_write_bytes(self) -> int:
        return sum(ref.size_bytes for ref in self.writes)


@dataclass
class TaskTimeline:
    """Timestamps collected along a task's life (all in seconds).

    In the simulation plane these are simulated times; in the live
    plane they are ``time.monotonic()`` readings.  Derived quantities
    match the paper's definitions: *queue time* is submission→dispatch
    (it includes provisioning waits, §4.6), *execution time* is
    dispatch→completion.
    """

    submitted: float = math.nan
    dispatched: float = math.nan
    started: float = math.nan
    completed: float = math.nan

    @property
    def queue_time(self) -> float:
        return self.dispatched - self.submitted

    @property
    def execution_time(self) -> float:
        return self.completed - self.dispatched

    @property
    def total_time(self) -> float:
        return self.completed - self.submitted


@dataclass
class TaskResult:
    """Outcome of one task execution."""

    task_id: str
    return_code: int = 0
    stdout: str = ""
    stderr: str = ""
    executor_id: str = ""
    error: str = ""
    attempts: int = 1
    timeline: TaskTimeline = field(default_factory=TaskTimeline)

    @property
    def ok(self) -> bool:
        """True when the task completed with return code 0 and no error."""
        return self.return_code == 0 and not self.error


@dataclass(frozen=True)
class Bundle:
    """A batch of tasks submitted in one client→dispatcher message.

    §3.4: client–dispatcher bundling amortises the per-message cost;
    performance degrades past ~300 tasks per bundle because of the
    serializer's grow-able array (modelled in `repro.net.costs`).
    """

    tasks: tuple[TaskSpec, ...]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a bundle must contain at least one task")
        ids = [t.task_id for t in self.tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("bundle contains duplicate task ids")

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    @staticmethod
    def split(tasks: list[TaskSpec], bundle_size: int) -> list["Bundle"]:
        """Partition *tasks* into bundles of at most *bundle_size*."""
        if bundle_size <= 0:
            raise ValueError("bundle_size must be positive")
        return [
            Bundle(tuple(tasks[i : i + bundle_size]))
            for i in range(0, len(tasks), bundle_size)
        ]
