"""The Falkon provisioner: dynamic resource provisioning (§3.2, §4.6).

The provisioner "periodically monitors dispatcher state {POLL} and,
based on policy, determines whether to create additional executors,
and if so, how many, and for how long.  Creation requests are issued
via GRAM4 to abstract LRM details."

Mechanics reproduced here:

* demand is read from the dispatcher (queued + busy tasks), clamped to
  ``[min_executors, max_executors]``;
* the shortfall is converted into LRM requests by the configured
  acquisition policy (all five §3.1 strategies available);
* each granted allocation starts ``executors_per_node`` executors per
  machine, which register with the dispatcher;
* release is governed by the release policy — distributed idle
  executors retire themselves and their machine is handed back to the
  LRM *individually* (the paper's per-resource distributed release),
  or the provisioner's poll loop releases idle executors under the
  centralized policy;
* the Figure 12/13 "allocated" series (executors whose creation and
  registration are in progress) is tracked in
  :class:`ProvisionerStats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.cluster.node import Machine
from repro.config import FalkonConfig, ReleasePolicyName
from repro.core.dispatcher import SimDispatcher
from repro.core.executor import SimExecutor
from repro.core.policies import (
    make_acquisition_policy,
    make_release_policy,
)
from repro.core.staging import StagingModel
from repro.lrm.gram import Gram4Gateway
from repro.sim import Environment, Gauge, Interrupt

__all__ = ["Provisioner", "ProvisionerStats"]


@dataclass
class ProvisionerStats:
    """Counters and time series for Tables 3–4 and Figures 12–13."""

    #: GRAM allocation requests issued (Table 4's "resource allocations").
    allocations_requested: int = 0
    allocations_granted: int = 0
    executors_started: int = 0
    executors_released: int = 0
    #: Executors whose creation/registration is in progress (blue).
    allocated_gauge: Gauge = field(default_factory=lambda: Gauge("provisioner/allocated"))

    @property
    def pending_executors(self) -> int:
        return int(self.allocated_gauge.current)


class Provisioner:
    """Dynamic resource provisioner over a GRAM4 gateway."""

    def __init__(
        self,
        env: Environment,
        dispatcher: SimDispatcher,
        gateway: Gram4Gateway,
        config: Optional[FalkonConfig] = None,
        staging: Optional[StagingModel] = None,
        executor_factory: Optional[Callable[..., SimExecutor]] = None,
    ) -> None:
        self.env = env
        self.dispatcher = dispatcher
        self.gateway = gateway
        self.config = (config or dispatcher.config).validate()
        self.staging = staging
        self.executor_factory = executor_factory or self._default_factory
        self.acquisition = make_acquisition_policy(self.config.acquisition_policy)
        self.release_policy = make_release_policy(
            self.config.release_policy,
            idle_time=self.config.idle_release_time,
            threshold=self.config.centralized_queue_threshold,
        )
        self.stats = ProvisionerStats()
        self._stopped = False
        self._proc = env.process(self._poll_loop(), name="provisioner")

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Cease provisioning (running executors keep draining work)."""
        self._stopped = True
        # Only interrupt a process that is parked on an event; one that
        # has not run yet observes the flag at its first iteration.
        if self._proc.is_alive and self._proc.target is not None:
            self._proc.interrupt("stop")

    def prewarm(self) -> Generator:
        """Generator: allocate ``min_executors`` up front and wait for
        them all to register (the Falkon-∞ setup, whose provisioning
        time the paper excludes from the workload measurement)."""
        needed = self.config.min_executors - self._supply()
        if needed > 0:
            yield from self._acquire(needed)
        while self.dispatcher.registered_executors < self.config.min_executors:
            yield self.env.timeout(1.0)

    # ------------------------------------------------------------------
    def _default_factory(self, machine: Machine, **kwargs) -> SimExecutor:
        return SimExecutor(
            self.env,
            self.dispatcher,
            release_policy=self.release_policy,
            staging=self.staging,
            node=machine.name,
            **kwargs,
        )

    def _supply(self) -> int:
        """Executors that exist or are on their way."""
        return self.dispatcher.registered_executors + self.stats.pending_executors

    def _demand(self) -> int:
        """Executors the current workload could use."""
        return self.dispatcher.queued_tasks + self.dispatcher.busy_executors

    def _poll_loop(self) -> Generator:
        centralized = self.config.release_policy is ReleasePolicyName.CENTRALIZED_QUEUE
        try:
            while not self._stopped:
                demand = self._demand()
                target = max(self.config.min_executors, min(self.config.max_executors, demand))
                shortfall = target - self._supply()
                if shortfall > 0:
                    yield from self._acquire(shortfall)
                if centralized and self.release_policy.dispatcher_should_release(
                    self.dispatcher.queued_tasks, self.dispatcher.idle_executors
                ):
                    idle = self.dispatcher.idle_executor_list()
                    if idle:
                        idle[0].release()
                # Sleep: poll while anything is in flight, else wait for
                # task arrivals so idle simulations can terminate.
                busy_system = (
                    self.dispatcher.queued_tasks > 0
                    or self.dispatcher.busy_executors > 0
                    or self.stats.pending_executors > 0
                    or (centralized and self.dispatcher.idle_executors > 0)
                    or self._supply() < self.config.min_executors
                )
                if busy_system:
                    yield self.env.timeout(self.config.provisioner_poll_interval)
                else:
                    yield self.dispatcher.activity()
        except Interrupt:
            return

    def _acquire(self, executors_needed: int) -> Generator:
        """Issue allocation requests covering *executors_needed*."""
        per_node = self.config.executors_per_node
        nodes_needed = math.ceil(executors_needed / per_node)
        plan = self.acquisition.plan(nodes_needed, available=self.gateway.free_nodes())
        for size in plan:
            self.stats.allocations_requested += 1
            self.stats.allocated_gauge.add(self.env.now, size * per_node)
            job = yield from self.gateway.allocate(
                nodes=size,
                walltime=self.config.allocation_lease,
                body=self._allocation_body,
                name=f"falkon-alloc-{self.stats.allocations_requested}",
            )
            # The job queues at the LRM; executors start when it runs.
            # If it dies before starting, un-count its pending executors.
            self.env.process(
                self._watch_allocation(job, size * per_node),
                name=f"{job.job_id}-watch",
            )

    def _watch_allocation(self, job, expected_executors: int) -> Generator:
        from repro.errors import ProvisioningError

        try:
            yield job.started
        except ProvisioningError:
            self.stats.allocated_gauge.add(self.env.now, -expected_executors)

    def _allocation_body(self, env: Environment, job, machines: list[Machine]) -> Generator:
        """Runs on the allocated machines: hosts the executors.

        Implements the paper's *distributed* per-resource release: when
        every executor on a machine has retired, that machine is handed
        back to the LRM individually rather than waiting for the whole
        allocation.
        """
        self.stats.allocations_granted += 1
        per_node = self.config.executors_per_node
        all_done = env.event()
        live_per_machine: dict[str, int] = {}
        live_total = 0
        executors: list[SimExecutor] = []
        machine_by_name = {m.name: m for m in machines}

        def on_release(executor: SimExecutor) -> None:
            nonlocal live_total
            machine = machine_by_name[executor.node]
            machine.vacate()
            self.stats.executors_released += 1
            self.stats.allocated_gauge.add(
                env.now, -1 if executor.registered_at is None else 0
            )
            live_per_machine[machine.name] -= 1
            live_total -= 1
            if live_per_machine[machine.name] == 0 and machine in job.machines:
                # Per-resource distributed release (§3.1).
                job.machines.remove(machine)
                self.gateway.lrm.cluster.release([machine])
            if live_total == 0 and not all_done.triggered:
                all_done.succeed(None)

        def on_register(executor: SimExecutor) -> None:
            self.stats.allocated_gauge.add(env.now, -1)

        for machine in machines:
            live_per_machine[machine.name] = 0
            for _slot in range(per_node):
                machine.occupy()
                live_per_machine[machine.name] += 1
                live_total += 1
                self.stats.executors_started += 1
                executors.append(
                    self.executor_factory(
                        machine,
                        on_release=on_release,
                        on_register=on_register,
                    )
                )
        try:
            yield all_done
        except Interrupt:
            # Lease expiry or teardown: kill whatever still runs.
            for executor in executors:
                if executor.is_alive:
                    executor.crash()

    def __repr__(self) -> str:
        return (
            f"<Provisioner {self.acquisition.name}/{self.release_policy.name} "
            f"allocations={self.stats.allocations_requested}>"
        )
