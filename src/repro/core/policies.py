"""Falkon scheduling policies (§3.1).

Three policy families:

* **Dispatch policy** — which executor gets the next task.  The store
  discipline in the dispatcher already realises *next-available*; the
  *data-aware* policy (a §6 future-work item) is provided by
  :mod:`repro.extensions.datacache`.
* **Resource acquisition policy** — how many resources to ask the LRM
  for and in how many requests.  All five strategies the paper lists
  are implemented: one request for *n* resources, *n* requests for one
  resource, arithmetically growing requests, exponentially growing
  requests, and a strategy sized by LRM-reported availability.
* **Resource release policy** — when resources are given back:
  distributed (each executor releases itself after an idle timeout),
  centralized (the dispatcher releases when the queue is short), or
  never (Falkon-∞).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.config import AcquisitionPolicyName, ReleasePolicyName

__all__ = [
    "AcquisitionPolicy",
    "AllAtOnce",
    "OneAtATime",
    "Additive",
    "Exponential",
    "Available",
    "make_acquisition_policy",
    "ReleasePolicy",
    "DistributedIdle",
    "CentralizedQueue",
    "NeverRelease",
    "make_release_policy",
]


class AcquisitionPolicy:
    """Splits a resource need into a list of LRM request sizes."""

    name = "abstract"

    def plan(self, needed: int, available: Optional[int] = None) -> list[int]:
        """Return request sizes summing to at most *needed* (≥ 1 each).

        Parameters
        ----------
        needed:
            Additional resources the provisioner wants.
        available:
            LRM-reported free nodes, when known (used by
            :class:`Available`; others ignore it).
        """
        raise NotImplementedError

    def _check(self, needed: int) -> None:
        if needed < 0:
            raise ValueError(f"needed must be >= 0, got {needed}")


class AllAtOnce(AcquisitionPolicy):
    """One request for all *n* resources (the paper's experiments)."""

    name = "all-at-once"

    def plan(self, needed: int, available: Optional[int] = None) -> list[int]:
        self._check(needed)
        return [needed] if needed > 0 else []


class OneAtATime(AcquisitionPolicy):
    """*n* requests for a single resource each."""

    name = "one-at-a-time"

    def plan(self, needed: int, available: Optional[int] = None) -> list[int]:
        self._check(needed)
        return [1] * needed


class Additive(AcquisitionPolicy):
    """Arithmetically growing requests: step, 2·step, 3·step, ..."""

    name = "additive"

    def __init__(self, step: int = 1) -> None:
        if step <= 0:
            raise ValueError("step must be positive")
        self.step = step

    def plan(self, needed: int, available: Optional[int] = None) -> list[int]:
        self._check(needed)
        plan: list[int] = []
        size = self.step
        remaining = needed
        while remaining > 0:
            take = min(size, remaining)
            plan.append(take)
            remaining -= take
            size += self.step
        return plan


class Exponential(AcquisitionPolicy):
    """Exponentially growing requests: 1, 2, 4, 8, ..."""

    name = "exponential"

    def __init__(self, base: int = 2) -> None:
        if base < 2:
            raise ValueError("base must be >= 2")
        self.base = base

    def plan(self, needed: int, available: Optional[int] = None) -> list[int]:
        self._check(needed)
        plan: list[int] = []
        size = 1
        remaining = needed
        while remaining > 0:
            take = min(size, remaining)
            plan.append(take)
            remaining -= take
            size *= self.base
        return plan


class Available(AcquisitionPolicy):
    """One request sized by the LRM's reported free resources.

    Falls back to all-at-once when availability is unknown; requests
    nothing when the LRM reports zero free nodes (retry next poll).
    """

    name = "available"

    def plan(self, needed: int, available: Optional[int] = None) -> list[int]:
        self._check(needed)
        if needed == 0:
            return []
        if available is None:
            return [needed]
        grant = min(needed, available)
        return [grant] if grant > 0 else []


def make_acquisition_policy(name: AcquisitionPolicyName) -> AcquisitionPolicy:
    """Instantiate the named §3.1 acquisition strategy."""
    table = {
        AcquisitionPolicyName.ALL_AT_ONCE: AllAtOnce,
        AcquisitionPolicyName.ONE_AT_A_TIME: OneAtATime,
        AcquisitionPolicyName.ADDITIVE: Additive,
        AcquisitionPolicyName.EXPONENTIAL: Exponential,
        AcquisitionPolicyName.AVAILABLE: Available,
    }
    return table[name]()


class ReleasePolicy:
    """Decides when resources are returned to the LRM."""

    name = "abstract"

    def executor_idle_timeout(self) -> float:
        """Seconds an executor may sit idle before releasing itself
        (``inf`` disables distributed self-release)."""
        return math.inf

    def dispatcher_should_release(self, queued_tasks: int, idle_executors: int) -> bool:
        """Centralized check run by the provisioner's poll loop."""
        return False


class DistributedIdle(ReleasePolicy):
    """§3.1's distributed policy: "if the resource has been idle for
    time t, the resource should release itself"."""

    name = "distributed-idle"

    def __init__(self, idle_time: float) -> None:
        if idle_time <= 0:
            raise ValueError("idle_time must be positive")
        self.idle_time = float(idle_time)

    def executor_idle_timeout(self) -> float:
        return self.idle_time


class CentralizedQueue(ReleasePolicy):
    """§3.1's centralized policy: "if the number of queued tasks is
    less than q, release a resource" (q = 0 → release when no queued
    tasks and executors sit idle)."""

    name = "centralized-queue"

    def __init__(self, threshold: int = 0) -> None:
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.threshold = threshold

    def dispatcher_should_release(self, queued_tasks: int, idle_executors: int) -> bool:
        return idle_executors > 0 and queued_tasks <= self.threshold


class NeverRelease(ReleasePolicy):
    """Falkon-∞: hold all resources until explicit teardown."""

    name = "never"


def make_release_policy(
    name: ReleasePolicyName, idle_time: float = 60.0, threshold: int = 0
) -> ReleasePolicy:
    """Instantiate the named release policy with its parameter."""
    if name is ReleasePolicyName.DISTRIBUTED_IDLE:
        return DistributedIdle(idle_time)
    if name is ReleasePolicyName.CENTRALIZED_QUEUE:
        return CentralizedQueue(threshold)
    return NeverRelease()
