"""The Falkon executor (simulation plane).

An executor is "a simple task executor" (§1) living on one processor of
a compute node.  Lifecycle (§3.2): start up (JVM launch), REGISTER with
the dispatcher, then loop — wait for work (the hybrid push/pull of
§3.3), execute it, deliver the result, possibly receive the next task
piggy-backed on the acknowledgement (§3.4).  Under the distributed
release policy the executor de-registers itself after sitting idle for
the configured time (§3.1).

Per-task wall-clock overhead (thread creation, WS pick-up, the Java
``exec``, result delivery) is calibrated so one executor sustains the
paper's 28 tasks/s (12 with security); a ``contention_factor`` scales
it up when many executors share one physical machine, as in the
54 000-executor experiment (900 per machine, §4.5).
"""

from __future__ import annotations

import itertools
import math
from enum import Enum
from typing import Callable, Generator, Optional

import numpy as np

from repro.core.dispatcher import SimDispatcher, TaskRecord
from repro.core.policies import ReleasePolicy, NeverRelease
from repro.core.staging import StagingModel
from repro.sim import Environment, Interrupt, TimeSeries
from repro.types import TaskResult

__all__ = ["ExecutorState", "SimExecutor"]

_executor_seq = itertools.count(1)


class ExecutorState(Enum):
    """Lifecycle states, matching Figures 12–13's color coding:
    STARTING = "allocated" (blue), IDLE = "registered" (red),
    BUSY = "active" (green)."""

    STARTING = "starting"
    IDLE = "idle"
    BUSY = "busy"
    RELEASED = "released"
    CRASHED = "crashed"


class SimExecutor:
    """One executor process.

    Parameters
    ----------
    env, dispatcher:
        The simulation environment and the dispatcher to register with.
    release_policy:
        Governs idle self-release; default never releases.
    startup_delay:
        Seconds from creation to registration ("JVM startup time and
        registration generally consume less than five secs", §4.6).
    staging:
        Optional :class:`StagingModel` for tasks with data refs.
    node:
        Name of the hosting machine (local-disk routing, Figures 4/10).
    contention_factor:
        Multiplier on per-task overhead when executors oversubscribe a
        machine (≈1.0 normally; >1 in the 54 K-executor experiment).
    overhead_jitter:
        Lognormal sigma for per-task overhead variation (Figure 10's
        spread); 0 disables jitter.
    rng:
        NumPy generator for jitter and failure injection.
    failure_rate:
        Probability a task execution reports failure (failure injection
        for replay-policy tests).
    on_release:
        Callback fired when the executor retires (provisioner hook that
        frees the underlying processor/machine).
    """

    def __init__(
        self,
        env: Environment,
        dispatcher: SimDispatcher,
        release_policy: Optional[ReleasePolicy] = None,
        startup_delay: float = 3.0,
        staging: Optional[StagingModel] = None,
        node: str = "node0",
        contention_factor: float = 1.0,
        overhead_jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        failure_rate: float = 0.0,
        on_release: Optional[Callable[["SimExecutor"], None]] = None,
        on_register: Optional[Callable[["SimExecutor"], None]] = None,
        executor_id: Optional[str] = None,
    ) -> None:
        if startup_delay < 0:
            raise ValueError("startup_delay must be >= 0")
        if contention_factor < 1.0:
            raise ValueError("contention_factor must be >= 1")
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        self.env = env
        self.dispatcher = dispatcher
        self.release_policy = release_policy or NeverRelease()
        self.startup_delay = startup_delay
        self.staging = staging
        self.node = node
        self.contention_factor = contention_factor
        self.overhead_jitter = overhead_jitter
        self.rng = rng
        self.failure_rate = failure_rate
        self.on_release = on_release
        self.on_register = on_register
        self.executor_id = executor_id or f"executor-{next(_executor_seq):06d}"

        self.state = ExecutorState.STARTING
        self.tasks_executed = 0
        #: Per-task overhead samples (Figure 10): wall-clock cost minus
        #: the task's run time.
        self.overhead_series = TimeSeries(f"{self.executor_id}/overhead")
        self.registered_at: Optional[float] = None
        self.released_at: Optional[float] = None
        #: Simulated time this executor last became idle (None while
        #: busy or before registration) — input to coordinated release.
        self.idle_since: Optional[float] = None
        self._current_record: Optional[TaskRecord] = None
        self._pending_bundle: list[tuple[TaskRecord, bool]] = []
        self._proc = env.process(self._lifecycle(), name=self.executor_id)

    # -- public state ------------------------------------------------------
    @property
    def is_busy(self) -> bool:
        return self.state is ExecutorState.BUSY

    @property
    def is_alive(self) -> bool:
        return self.state not in (ExecutorState.RELEASED, ExecutorState.CRASHED)

    def crash(self) -> None:
        """Kill the executor immediately (failure injection).

        The dispatcher replays any in-flight task per the replay policy.
        """
        if not self.is_alive:
            return
        self._proc.defused = True
        self._proc.interrupt("crash")

    def release(self) -> None:
        """Ask the executor to retire as soon as it is idle
        (centralized release policy / provisioner teardown)."""
        if self.is_alive and not self.is_busy:
            self._proc.defused = True
            self._proc.interrupt("release")

    # -- internals ----------------------------------------------------------
    def _per_task_overhead(self) -> float:
        base = (
            self.dispatcher.costs.executor_overhead(self.dispatcher.config.security)
            - self.dispatcher.costs.dispatcher_cpu_per_task(self.dispatcher.config.security)
        )
        overhead = base * self.contention_factor
        if self.overhead_jitter > 0 and self.rng is not None:
            overhead *= float(self.rng.lognormal(mean=0.0, sigma=self.overhead_jitter))
        return overhead

    def _lifecycle(self) -> Generator:
        crashed = False
        try:
            if self.startup_delay > 0:
                yield self.env.timeout(self.startup_delay)
            self.state = ExecutorState.IDLE
            self.idle_since = self.env.now
            self.registered_at = self.env.now
            self.dispatcher.register_executor(self)
            if self.on_register is not None:
                self.on_register(self)

            # Pending (record, shared_exchange) pairs: the head of each
            # dispatcher bundle pays the full exchange, followers share it.
            pending: list[tuple[TaskRecord, bool]] = []
            self._pending_bundle = pending
            while True:
                if not pending:
                    record = yield from self._wait_for_work()
                    if record is None:
                        break  # idle-released
                    bundle = self.dispatcher.take_bundle(record)
                    pending.extend((r, i > 0) for i, r in enumerate(bundle))
                record, shared = pending.pop(0)
                next_record = yield from self._run_task(record, shared_exchange=shared)
                if next_record is not None:
                    bundle = self.dispatcher.take_bundle(next_record)
                    pending.extend((r, i > 0) for i, r in enumerate(bundle))
        except Interrupt as intr:
            crashed = intr.cause == "crash"
        finally:
            self._retire(crashed)

    def _wait_for_work(self) -> Generator:
        """Blocking pull with the release policy's idle timeout."""
        idle_limit = self.release_policy.executor_idle_timeout()
        get = self.dispatcher.request_task(self._task_filter())
        try:
            if math.isinf(idle_limit):
                record = yield get
                return record
            deadline = self.env.timeout(idle_limit)
            yield self.env.any_of([get, deadline])
            if get.triggered:
                return get.value
            get.cancel()
            return None
        except Interrupt:
            # Crash/teardown while parked: never strand a task the get
            # may already have claimed, nor leave a live getter behind.
            if get.triggered and get.ok:
                self.dispatcher.requeue_undispatched(get.value)
            else:
                get.cancel()
            raise

    def _task_filter(self):
        """Predicate for the dispatch policy; next-available takes any."""
        return None

    def _run_task(self, record: TaskRecord, shared_exchange: bool = False) -> Generator:
        """Execute one task; returns the piggy-backed next record.

        *shared_exchange* marks a follower in a dispatcher→executor
        bundle (§3.4): the notify/pick-up costs were paid by the bundle
        head, so only execution-side work remains.
        """
        self.state = ExecutorState.BUSY
        self.idle_since = None
        self._current_record = record
        attempt = yield from self.dispatcher.dispatch_leg(
            record, self.executor_id, shared_exchange=shared_exchange
        )
        started = self.env.now
        overhead = self._per_task_overhead()
        # Thread creation + WS pick-up happen before the exec (shared
        # across a bundle; followers only fork).
        yield self.env.timeout((0.15 if shared_exchange else 0.6) * overhead)
        if self.staging is not None:
            yield from self.staging.stage_in(self.env, record.spec, self.node)
        record.timeline.started = self.env.now
        if record.spec.duration > 0:
            yield self.env.timeout(record.spec.duration)
        if self.staging is not None:
            yield from self.staging.stage_out(self.env, record.spec, self.node)
        # Result marshalling + delivery WS call.
        yield self.env.timeout(0.4 * overhead)
        failed = (
            self.failure_rate > 0
            and self.rng is not None
            and float(self.rng.random()) < self.failure_rate
        )
        result = TaskResult(
            record.task_id,
            return_code=1 if failed else 0,
            error="injected failure" if failed else "",
            executor_id=self.executor_id,
        )
        self.overhead_series.record(
            started, self.env.now - started - record.spec.duration
        )
        self.tasks_executed += 1
        next_record = yield from self.dispatcher.deliver_result(record, result, attempt)
        self._current_record = None
        self.state = ExecutorState.IDLE
        self.idle_since = self.env.now
        return next_record

    def _retire(self, crashed: bool) -> None:
        if self.state in (ExecutorState.RELEASED, ExecutorState.CRASHED):
            return
        was_busy = self.state is ExecutorState.BUSY
        registered = self.state in (ExecutorState.IDLE, ExecutorState.BUSY)
        self.state = ExecutorState.CRASHED if crashed else ExecutorState.RELEASED
        self.released_at = self.env.now
        if registered:
            self.dispatcher.deregister_executor(self)
        if was_busy:
            self.dispatcher.executor_lost(self.executor_id, self._current_record)
            self._current_record = None
        # Never strand bundled tasks the executor claimed but had not
        # started (dispatcher→executor bundling, §3.4).
        pending, self._pending_bundle = self._pending_bundle, []
        for record, _shared in pending:
            self.dispatcher.requeue_undispatched(record)
        if self.on_release is not None:
            self.on_release(self)

    def __repr__(self) -> str:
        return f"<SimExecutor {self.executor_id} {self.state.value} ran={self.tasks_executed}>"
