"""The factory/instance pattern (§3.2) for the simulation plane.

"The dispatcher implements the factory/instance pattern, providing a
*create instance* operation to allow a clean separation among
different clients.  To access the dispatcher, a client first requests
creation of a new instance, for which is returned a unique endpoint
reference (EPR).  The client then uses that EPR to submit tasks,
monitor progress, retrieve results, and (finally) destroy the
instance."

:class:`FalkonService` fronts one shared :class:`SimDispatcher` (all
instances share the executor pool and the notification engine, as in
the paper) while giving each client its own task namespace, result
view and teardown.
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

from repro.core.client import SimClient
from repro.core.dispatcher import SimDispatcher, TaskRecord
from repro.errors import DispatchError
from repro.net.costs import BundlingCostModel
from repro.sim import Environment
from repro.types import TaskResult, TaskSpec, TaskState

__all__ = ["ClientInstance", "FalkonService"]


class ClientInstance:
    """One client's endpoint: an EPR-scoped view of the dispatcher."""

    def __init__(self, service: "FalkonService", epr: str) -> None:
        self._service = service
        self.epr = epr
        self._client = SimClient(service.env, service.dispatcher, service.bundling)
        self._records: dict[str, TaskRecord] = {}
        self._destroyed = False

    # -- submission ------------------------------------------------------
    def submit(self, tasks: list[TaskSpec], bundle_size: Optional[int] = None) -> Generator:
        """Generator: submit through this instance; returns records."""
        self._check_alive()
        records = yield from self._client.submit(tasks, bundle_size)
        for record in records:
            self._records[record.task_id] = record
        return records

    def submit_and_wait(
        self, tasks: list[TaskSpec], bundle_size: Optional[int] = None
    ) -> Generator:
        """Generator: submit and wait for this batch's results."""
        records = yield from self.submit(tasks, bundle_size)
        results = []
        for record in records:
            result = yield record.completion
            results.append(result)
        return results

    # -- monitoring (messages {8}-{10}) ------------------------------------
    def progress(self) -> dict[str, int]:
        """Per-state counts of this instance's tasks."""
        counts = {state.value: 0 for state in TaskState}
        for record in self._records.values():
            counts[record.state.value] += 1
        return counts

    def results(self) -> list[TaskResult]:
        """Results finished so far (the GET_RESULTS view)."""
        return [
            record.result
            for record in self._records.values()
            if record.result is not None
        ]

    @property
    def task_count(self) -> int:
        return len(self._records)

    # -- teardown ----------------------------------------------------------
    @property
    def destroyed(self) -> bool:
        return self._destroyed

    def destroy(self) -> int:
        """Destroy the instance; still-queued tasks are withdrawn.

        Returns the number of tasks cancelled.  In-flight (dispatched)
        tasks finish on their executors, but their results are no
        longer deliverable to anyone.
        """
        if self._destroyed:
            return 0
        self._destroyed = True
        cancelled = 0
        for record in self._records.values():
            if record.state is TaskState.QUEUED and self._service.dispatcher.withdraw(record):
                cancelled += 1
        self._service._instance_destroyed(self.epr)
        return cancelled

    def _check_alive(self) -> None:
        if self._destroyed:
            raise DispatchError(f"instance {self.epr} has been destroyed")

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else "active"
        return f"<ClientInstance {self.epr} {state} tasks={len(self._records)}>"


class FalkonService:
    """The dispatcher factory: hands out client instances."""

    def __init__(
        self,
        env: Environment,
        dispatcher: SimDispatcher,
        bundling: Optional[BundlingCostModel] = None,
    ) -> None:
        self.env = env
        self.dispatcher = dispatcher
        self.bundling = bundling or BundlingCostModel()
        self._seq = itertools.count(1)
        self._instances: dict[str, ClientInstance] = {}

    def create_instance(self) -> ClientInstance:
        """The factory operation: a fresh EPR-scoped instance."""
        epr = f"falkon-epr-{next(self._seq):04d}"
        instance = ClientInstance(self, epr)
        self._instances[epr] = instance
        return instance

    def instance(self, epr: str) -> ClientInstance:
        """Look an instance up by its EPR."""
        try:
            return self._instances[epr]
        except KeyError:
            raise DispatchError(f"unknown EPR {epr!r}") from None

    @property
    def active_instances(self) -> int:
        return len(self._instances)

    def _instance_destroyed(self, epr: str) -> None:
        self._instances.pop(epr, None)

    def __repr__(self) -> str:
        return f"<FalkonService instances={len(self._instances)}>"
