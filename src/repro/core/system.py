"""Composition root: a whole Falkon deployment in one object.

:class:`FalkonSystem` wires the simulated pieces together the way the
paper's testbed was wired: a compute cluster managed by an LRM (PBS by
default), fronted by a GRAM4 gateway, a dispatcher on its own host, a
provisioner, and a client.  Experiments either let the provisioner
acquire resources dynamically (§4.6) or call :meth:`static_pool` to
stand up a fixed set of executors (the §4.1–§4.5 microbenchmarks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.cluster.jvm import JVMModel
from repro.cluster.node import Cluster, ClusterSpec, NodeSpec
from repro.config import FalkonConfig
from repro.core.client import SimClient
from repro.core.dispatcher import SimDispatcher, TaskRecord
from repro.core.executor import SimExecutor
from repro.core.provisioner import Provisioner
from repro.core.staging import StagingModel
from repro.lrm.base import BatchScheduler, LRMConfig
from repro.lrm.gram import Gram4Gateway, GramConfig
from repro.lrm.pbs import PBS_CONFIG
from repro.net.costs import BundlingCostModel, NetworkModel, WSCostModel
from repro.sim import Environment, RngStreams
from repro.types import TaskResult, TaskSpec

__all__ = ["FalkonSystem", "WorkloadResult"]


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    records: list[TaskRecord]
    started_at: float
    finished_at: float

    @property
    def results(self) -> list[TaskResult]:
        return [r.result for r in self.records if r.result is not None]

    @property
    def makespan(self) -> float:
        return self.finished_at - self.started_at

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.result is not None and r.result.ok)

    @property
    def failed(self) -> int:
        return sum(1 for r in self.records if r.result is not None and not r.result.ok)

    @property
    def throughput(self) -> float:
        """Completed tasks per second over the makespan."""
        return self.completed / self.makespan if self.makespan > 0 else math.inf

    def mean_queue_time(self) -> float:
        times = [r.timeline.queue_time for r in self.records if r.result is not None]
        return float(np.mean(times)) if times else math.nan

    def mean_execution_time(self) -> float:
        times = [r.timeline.execution_time for r in self.records if r.result is not None]
        return float(np.mean(times)) if times else math.nan

    def execution_time_fraction(self) -> float:
        """Table 3's ``exec_time / (exec_time + queue_time)`` ratio."""
        q, e = self.mean_queue_time(), self.mean_execution_time()
        return e / (e + q) if e + q > 0 else math.nan


class FalkonSystem:
    """A complete simulated Falkon deployment."""

    def __init__(
        self,
        config: Optional[FalkonConfig] = None,
        env: Optional[Environment] = None,
        cluster_nodes: int = 64,
        processors_per_node: int = 2,
        free_limit: Optional[int] = None,
        lrm_config: Optional[LRMConfig] = None,
        gram_config: Optional[GramConfig] = None,
        costs: Optional[WSCostModel] = None,
        network: Optional[NetworkModel] = None,
        bundling: Optional[BundlingCostModel] = None,
        jvm: Optional[JVMModel] = None,
        staging: Optional[StagingModel] = None,
        seed: int = 0,
    ) -> None:
        self.env = env or Environment()
        self.config = (config or FalkonConfig()).validate()
        self.costs = costs or WSCostModel()
        self.network = network or NetworkModel()
        self.bundling = bundling or BundlingCostModel()
        self.rngs = RngStreams(seed)
        self.cluster = Cluster(
            self.env,
            ClusterSpec(
                name="sim-cluster",
                nodes=cluster_nodes,
                node=NodeSpec(processors=processors_per_node),
            ),
            free_limit=free_limit,
        )
        self.lrm = BatchScheduler(self.env, self.cluster, lrm_config or PBS_CONFIG)
        self.gateway = Gram4Gateway(self.env, self.lrm, gram_config)
        self.staging = staging
        self.dispatcher = SimDispatcher(
            self.env, self.config, costs=self.costs, network=self.network, jvm=jvm
        )
        self.provisioner = Provisioner(
            self.env, self.dispatcher, self.gateway, self.config, staging=staging
        )
        self.client = SimClient(self.env, self.dispatcher, bundling=self.bundling)
        self._static_executors: list[SimExecutor] = []

    # ------------------------------------------------------------------
    def static_pool(
        self,
        n_executors: int,
        startup_delay: float = 0.0,
        contention_factor: float = 1.0,
        overhead_jitter: float = 0.0,
        failure_rate: float = 0.0,
        executors_per_machine: Optional[int] = None,
    ) -> list[SimExecutor]:
        """Create *n_executors* directly, bypassing the provisioner.

        Used by the microbenchmarks, which fix the executor count.  The
        provisioner is stopped so it does not double-provision.
        Executors are spread round-robin over synthetic node names,
        ``executors_per_machine`` to a node (defaults to the cluster's
        processors per node).
        """
        if n_executors <= 0:
            raise ValueError("n_executors must be positive")
        self.provisioner.stop()
        per_machine = executors_per_machine or self.cluster.spec.node.processors
        # A fixed pool has no provisioner behind it: executors must not
        # self-release on idle (the paper's microbenchmarks start all
        # executors up front and keep them for the whole experiment —
        # e.g. the 54 K pool idles ~400 s during the dispatch ramp).
        from repro.core.policies import NeverRelease

        release = NeverRelease()
        # One independent stream per executor (split from the root seed
        # by name, not a shared generator): each executor's jitter and
        # failure draws are a pure function of (seed, pool index), so
        # identical seeds reproduce identical per-executor timelines
        # regardless of how the scheduler interleaves their draws.
        pool_base = len(self._static_executors)
        executors = [
            SimExecutor(
                self.env,
                self.dispatcher,
                release_policy=release,
                startup_delay=startup_delay,
                staging=self.staging,
                node=f"sim-node{(i // per_machine):05d}",
                contention_factor=contention_factor,
                overhead_jitter=overhead_jitter,
                rng=self.rngs.stream(f"executor:{pool_base + i:05d}"),
                failure_rate=failure_rate,
            )
            for i in range(n_executors)
        ]
        self._static_executors.extend(executors)
        return executors

    # ------------------------------------------------------------------
    def run_workload(
        self,
        tasks: list[TaskSpec],
        bundle_size: Optional[int] = None,
        prewarm: bool = False,
    ) -> WorkloadResult:
        """Submit *tasks* and run the simulation until all complete."""
        if not tasks:
            raise ValueError("workload must contain at least one task")
        already_done = self.dispatcher.tasks_completed + self.dispatcher.tasks_failed
        records_box: list[TaskRecord] = []

        def driver() -> Generator:
            if prewarm:
                yield from self.provisioner.prewarm()
            start = self.env.now
            records = yield from self.client.submit(tasks, bundle_size)
            records_box.extend(records)
            return start

        driver_proc = self.env.process(driver(), name="workload-driver")
        milestone = self.dispatcher.completion_milestone(already_done + len(tasks))
        started_at = self.env.run(until=driver_proc)
        self.env.run(until=milestone)
        return WorkloadResult(
            records=records_box, started_at=started_at, finished_at=self.env.now
        )

    def __repr__(self) -> str:
        return f"<FalkonSystem {self.dispatcher!r} cluster={self.cluster.name}>"
