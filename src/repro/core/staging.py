"""Data staging performed by executors (Figure 4 substrate).

§3.1 assumes "all data needed by a task is available in a shared file
system"; §4.2 measures what that costs.  A :class:`StagingModel` binds
the executor to the filesystem models: each :class:`~repro.types.DataRef`
is read before execution and written after, against the shared
filesystem or the executor's node-local disk according to the ref's
``location``.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.cluster.filesystem import LocalDisk, SharedFileSystem
from repro.sim import Environment
from repro.types import DataLocation, TaskSpec

__all__ = ["StagingModel"]


class StagingModel:
    """Routes a task's data refs to the right filesystem model."""

    def __init__(
        self,
        shared: Optional[SharedFileSystem] = None,
        local: Optional[LocalDisk] = None,
    ) -> None:
        self.shared = shared
        self.local = local

    def _require(self, location: DataLocation):
        fs = self.shared if location is DataLocation.SHARED else self.local
        if fs is None:
            raise RuntimeError(f"no filesystem model bound for {location.value} data")
        return fs

    def stage_in(self, env: Environment, task: TaskSpec, node: str) -> Generator:
        """Generator: read every input ref (blocking for contention)."""
        for ref in task.reads:
            fs = self._require(ref.location)
            if isinstance(fs, LocalDisk):
                yield from fs.read(env, ref.size_bytes, node=node)
            else:
                yield from fs.read(env, ref.size_bytes)

    def stage_out(self, env: Environment, task: TaskSpec, node: str) -> Generator:
        """Generator: write every output ref."""
        for ref in task.writes:
            fs = self._require(ref.location)
            if isinstance(fs, LocalDisk):
                yield from fs.write(env, ref.size_bytes, node=node)
            else:
                yield from fs.write(env, ref.size_bytes)
