"""The Falkon client (simulation plane).

A client "submits task requests to a dispatcher" (§7); with
client–dispatcher bundling (§3.4) it packs up to ``bundle_size`` tasks
into each submit call, paying the Figure 5 call cost (fixed + linear +
the Axis quadratic term) per call before the dispatcher ingests the
batch.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.dispatcher import SimDispatcher, TaskRecord
from repro.net.costs import BundlingCostModel
from repro.sim import Environment
from repro.types import TaskSpec

__all__ = ["SimClient"]


class SimClient:
    """Workload-submitting client bound to one dispatcher."""

    def __init__(
        self,
        env: Environment,
        dispatcher: SimDispatcher,
        bundling: Optional[BundlingCostModel] = None,
    ) -> None:
        self.env = env
        self.dispatcher = dispatcher
        self.bundling = bundling or BundlingCostModel()
        self.bundles_sent = 0
        self.tasks_sent = 0

    def effective_bundle_size(self, override: Optional[int] = None) -> int:
        """The bundle size in force (1 when bundling is disabled)."""
        config = self.dispatcher.config
        if override is not None:
            if override <= 0:
                raise ValueError("bundle size must be positive")
            return override
        return config.bundle_size if config.client_bundling else 1

    def submit(
        self, tasks: list[TaskSpec], bundle_size: Optional[int] = None
    ) -> Generator:
        """Generator: submit *tasks*, returning their records.

        Each bundle costs ``bundling.call_cost(b)`` of client wall-clock
        (serialisation, the WS call, the Axis array handling) before
        the dispatcher accepts it — so submission of a large workload
        takes real time during which early tasks already execute.
        """
        if not tasks:
            return []
        size = self.effective_bundle_size(bundle_size)
        records: list[TaskRecord] = []
        for start in range(0, len(tasks), size):
            chunk = tasks[start : start + size]
            yield self.env.timeout(
                self.bundling.call_cost(len(chunk))
                * self.dispatcher.costs.security_factor(self.dispatcher.config.security)
            )
            records.extend((yield from self.dispatcher.accept_tasks(chunk)))
            self.bundles_sent += 1
            self.tasks_sent += len(chunk)
        return records

    def submit_and_wait(
        self, tasks: list[TaskSpec], bundle_size: Optional[int] = None
    ) -> Generator:
        """Generator: submit *tasks* and wait for all their results."""
        records = yield from self.submit(tasks, bundle_size)
        results = []
        for record in records:
            result = yield record.completion
            results.append(result)
        return results

    def __repr__(self) -> str:
        return f"<SimClient sent={self.tasks_sent} bundles={self.bundles_sent}>"
