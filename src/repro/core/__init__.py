"""The Falkon system (simulation plane).

This package implements the paper's primary contribution:

* :mod:`repro.core.policies` — dispatch, resource acquisition (all five
  §3.1 strategies) and resource release policies.
* :mod:`repro.core.dispatcher` — the streamlined task dispatcher with
  client bundling, piggy-backing, the hybrid push/pull executor
  protocol, replay (retry) handling, and the JVM GC hook.
* :mod:`repro.core.executor` — the lightweight executor lifecycle:
  start → register → notified → pull → execute → deliver → idle-release.
* :mod:`repro.core.provisioner` — dynamic resource provisioning over a
  GRAM4 gateway.
* :mod:`repro.core.client` — workload submission with bundling.
* :mod:`repro.core.system` — the composition root tying dispatcher,
  provisioner, LRM and cluster together for experiments.

The live (real TCP) implementation with the same protocol lives in
:mod:`repro.live`.
"""

from repro.core.policies import (
    AcquisitionPolicy,
    AllAtOnce,
    OneAtATime,
    Additive,
    Exponential,
    Available,
    make_acquisition_policy,
    ReleasePolicy,
    DistributedIdle,
    CentralizedQueue,
    NeverRelease,
    make_release_policy,
)
from repro.core.dispatcher import SimDispatcher, TaskRecord
from repro.core.executor import SimExecutor, ExecutorState
from repro.core.provisioner import Provisioner, ProvisionerStats
from repro.core.client import SimClient
from repro.core.service import ClientInstance, FalkonService
from repro.core.system import FalkonSystem, WorkloadResult

__all__ = [
    "AcquisitionPolicy",
    "AllAtOnce",
    "OneAtATime",
    "Additive",
    "Exponential",
    "Available",
    "make_acquisition_policy",
    "ReleasePolicy",
    "DistributedIdle",
    "CentralizedQueue",
    "NeverRelease",
    "make_release_policy",
    "SimDispatcher",
    "TaskRecord",
    "SimExecutor",
    "ExecutorState",
    "Provisioner",
    "ProvisionerStats",
    "SimClient",
    "ClientInstance",
    "FalkonService",
    "FalkonSystem",
    "WorkloadResult",
]
