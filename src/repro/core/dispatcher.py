"""The Falkon dispatcher (simulation plane).

The dispatcher "accepts tasks from clients and implements the dispatch
policy" (§3.2).  It is deliberately streamlined: a FIFO wait queue, an
executor pool, and per-message CPU accounting — no multiple queues,
priorities or accounting, which is exactly the point of the paper.

Cost model
----------
The dispatcher host's CPU is modelled as a capacity-1 resource; every
message leg charges calibrated CPU time from :class:`WSCostModel`:

* one *submit* charge per client bundle;
* a *dispatch leg* + *completion leg* per task, summing to the
  calibrated 2.053 ms (487 tasks/s) — piggy-backing assumed;
* one extra bare WS call per task when piggy-backing is off.

A :class:`repro.cluster.jvm.JVMModel` may be attached; allocation churn
then periodically stops the world while holding the CPU, reproducing
Figure 8's throughput dips.

The executor protocol is the hybrid push/pull of §3.3: an idle executor
parks a ``get`` on the wait queue (the blocking pull whose state the
dispatcher keeps per §3.3's "blocking request" analysis); a task arrival
resolves it, standing in for the notify{3}/get-work{4}/work{5} exchange,
whose cost is charged on the dispatch leg.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.cluster.jvm import JVMModel
from repro.config import FalkonConfig, SecurityMode
from repro.net.costs import NetworkModel, WSCostModel
from repro.sim import Counter, Environment, Event, FilterStore, Gauge, Resource
from repro.sim.tracing import Tracer
from repro.types import TaskResult, TaskSpec, TaskState, TaskTimeline

__all__ = ["TaskRecord", "SimDispatcher"]


@dataclass
class TaskRecord:
    """Dispatcher-side state of one task."""

    spec: TaskSpec
    state: TaskState = TaskState.QUEUED
    attempts: int = 0
    timeline: TaskTimeline = field(default_factory=TaskTimeline)
    result: Optional[TaskResult] = None
    executor_id: str = ""
    #: Succeeds with the final TaskResult.
    completion: Event = None  # type: ignore[assignment]

    @property
    def task_id(self) -> str:
        return self.spec.task_id


class SimDispatcher:
    """Streamlined task dispatcher."""

    def __init__(
        self,
        env: Environment,
        config: Optional[FalkonConfig] = None,
        costs: Optional[WSCostModel] = None,
        network: Optional[NetworkModel] = None,
        jvm: Optional[JVMModel] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.env = env
        self.config = (config or FalkonConfig()).validate()
        self.costs = costs or WSCostModel()
        self.network = network or NetworkModel()
        self.jvm = jvm
        self.tracer = tracer
        self.cpu = Resource(env, capacity=1)
        self.queue = FilterStore(env)
        self._gc_churn = 0
        self._executors: dict[str, Any] = {}
        self._milestones: list[tuple[int, int, Event]] = []
        self._milestone_seq = itertools.count()
        self._activity: Optional[Event] = None

        # -- instrumentation ------------------------------------------------
        self.queue_gauge = Gauge("dispatcher/queued")
        self.busy_gauge = Gauge("dispatcher/busy-executors")
        self.registered_gauge = Gauge("dispatcher/registered-executors")
        self.completions = Counter("dispatcher/completions")
        self.dispatches = Counter("dispatcher/dispatches")
        self.submissions = Counter("dispatcher/submissions")
        self.records: list[TaskRecord] = []
        self.tasks_accepted = 0
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.retries = 0

    # ------------------------------------------------------------------
    # client-facing surface
    # ------------------------------------------------------------------
    def accept_tasks(self, tasks: list[TaskSpec]) -> Generator:
        """Generator: ingest one client bundle; returns the records.

        Charges one submit call of dispatcher CPU for the whole bundle
        (client-side bundling cost is paid by the client, see
        :class:`repro.core.client.SimClient`).
        """
        if not tasks:
            raise ValueError("bundle must contain at least one task")
        yield from self._charge_cpu(
            self.costs.submit_call_cpu * self.costs.security_factor(self.config.security)
        )
        records = [self._enqueue_new(spec) for spec in tasks]
        return records

    def accept_tasks_now(self, tasks: list[TaskSpec]) -> list[TaskRecord]:
        """Non-charging ingest for tests and internal providers."""
        return [self._enqueue_new(spec) for spec in tasks]

    def _enqueue_new(self, spec: TaskSpec) -> TaskRecord:
        record = TaskRecord(spec=spec, completion=self.env.event())
        record.timeline.submitted = self.env.now
        self.records.append(record)
        self.tasks_accepted += 1
        self.submissions.tick(self.env.now)
        if self.tracer is not None:
            self.tracer.emit(self.env.now, "submit", task=record.task_id)
        self._enqueue(record)
        if self._activity is not None and not self._activity.triggered:
            self._activity.succeed(None)
        return record

    def activity(self) -> Event:
        """Event that fires on the next task arrival (provisioner's
        idle-sleep wakeup)."""
        if self._activity is None or self._activity.processed:
            self._activity = self.env.event()
        return self._activity

    def _enqueue(self, record: TaskRecord) -> None:
        record.state = TaskState.QUEUED
        record.executor_id = ""
        self.queue.put(record)
        self.queue_gauge.set(self.env.now, len(self.queue.items))

    # ------------------------------------------------------------------
    # executor-facing surface (the hybrid push/pull protocol)
    # ------------------------------------------------------------------
    def register_executor(self, executor: Any) -> None:
        """REGISTER {from a new executor}."""
        if executor.executor_id in self._executors:
            raise ValueError(f"duplicate executor id {executor.executor_id!r}")
        self._executors[executor.executor_id] = executor
        self.registered_gauge.add(self.env.now, 1)

    def deregister_executor(self, executor: Any) -> None:
        """DEREGISTER (idle release or crash)."""
        if self._executors.pop(executor.executor_id, None) is not None:
            self.registered_gauge.add(self.env.now, -1)

    def request_task(self, filter: Optional[Callable[[TaskRecord], bool]] = None):
        """The executor's blocking pull: a store ``get`` event.

        The returned event succeeds with a :class:`TaskRecord`; cancel
        it (``.cancel()``) when racing an idle timeout.
        """
        return self.queue.get(filter)

    def dispatch_leg(
        self, record: TaskRecord, executor_id: str, shared_exchange: bool = False
    ) -> Generator:
        """Generator: charge the notify/get-work/work exchange {3,4,5}.

        Returns the attempt number, which the executor must echo into
        :meth:`deliver_result` so stale deliveries (superseded by the
        replay policy) are recognised and dropped.  With
        *shared_exchange* (a task delivered inside an executor bundle)
        only the serialization share (~20 %) of the leg is charged.
        """
        leg = self._dispatch_leg_cpu()
        yield from self._charge_cpu(0.2 * leg if shared_exchange else leg)
        record.state = TaskState.DISPATCHED
        record.attempts += 1
        record.executor_id = executor_id
        record.timeline.dispatched = self.env.now
        self.dispatches.tick(self.env.now)
        self.queue_gauge.set(self.env.now, len(self.queue.items))
        self.busy_gauge.add(self.env.now, 1)
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "dispatch",
                task=record.task_id, executor=executor_id, attempt=record.attempts,
            )
        if self.config.replay_timeout is not None:
            self.env.process(
                self._replay_watchdog(record, record.attempts),
                name=f"watchdog-{record.task_id}",
            )
        return record.attempts

    def deliver_result(self, record: TaskRecord, result: TaskResult, attempt: int) -> Generator:
        """Generator: the result{6}/ack{7} exchange; returns the
        piggy-backed next :class:`TaskRecord` or ``None``.

        On failure the task is replayed "according to the dispatch
        policy (up to some specified number of retries)" (§3.1).
        *attempt* must be the value :meth:`dispatch_leg` returned;
        deliveries for superseded attempts are dropped.
        """
        yield from self._charge_cpu(self._completion_leg_cpu())
        if (
            record.state is not TaskState.DISPATCHED
            or record.attempts != attempt
        ):
            # Stale: the replay policy already re-dispatched (or
            # finalized) this task; the watchdog adjusted the busy
            # count when it did so.
            return self._piggyback_next()
        self.busy_gauge.add(self.env.now, -1)
        if result.ok:
            self._finalize(record, result, TaskState.COMPLETED)
        elif record.attempts <= self.config.max_retries:
            self.retries += 1
            if self.tracer is not None:
                self.tracer.emit(
                    self.env.now, "retry",
                    task=record.task_id, attempt=record.attempts,
                )
            self._enqueue(record)
        else:
            self._finalize(record, result, TaskState.FAILED)
        return self._piggyback_next()

    def withdraw(self, record: TaskRecord) -> bool:
        """Cancel a still-queued task (instance teardown, §3.2).

        Returns True if the record was found in the wait queue and
        cancelled; False if it already left the queue (dispatched or
        terminal).  O(queue length) — teardown is rare.
        """
        if record.state is not TaskState.QUEUED:
            return False
        try:
            self.queue.items.remove(record)
        except ValueError:
            return False
        self.queue_gauge.set(self.env.now, len(self.queue.items))
        record.state = TaskState.CANCELED
        record.timeline.completed = self.env.now
        result = TaskResult(record.task_id, return_code=1, error="instance destroyed")
        result.timeline = record.timeline
        record.result = result
        self.tasks_failed += 1
        self.completions.tick(self.env.now)
        record.completion.succeed(result)
        done = self.tasks_completed + self.tasks_failed
        while self._milestones and self._milestones[0][0] <= done:
            _n, _seq, event = heapq.heappop(self._milestones)
            event.succeed(done)
        return True

    def requeue_undispatched(self, record: TaskRecord) -> None:
        """Return a record that was pulled from the queue but never
        dispatched (its puller died mid-handshake)."""
        if not record.state.terminal:
            self._enqueue(record)

    def executor_lost(self, executor_id: str, record: Optional[TaskRecord]) -> None:
        """An executor vanished; replay its in-flight task if any."""
        if record is not None and not record.state.terminal:
            if record.state is TaskState.DISPATCHED:
                self.busy_gauge.add(self.env.now, -1)
            if record.attempts <= self.config.max_retries:
                self.retries += 1
                self._enqueue(record)
            else:
                self._finalize(
                    record,
                    TaskResult(
                        record.task_id,
                        return_code=1,
                        error=f"executor {executor_id} lost",
                        executor_id=executor_id,
                    ),
                    TaskState.FAILED,
                )

    # ------------------------------------------------------------------
    # state queries (the provisioner's {POLL})
    # ------------------------------------------------------------------
    @property
    def queued_tasks(self) -> int:
        return len(self.queue.items)

    @property
    def busy_executors(self) -> int:
        return int(self.busy_gauge.current)

    @property
    def registered_executors(self) -> int:
        return int(self.registered_gauge.current)

    @property
    def idle_executors(self) -> int:
        return self.registered_executors - self.busy_executors

    def idle_executor_list(self) -> list[Any]:
        """Currently idle executors (centralized release policy input)."""
        return [e for e in self._executors.values() if not e.is_busy]

    def completion_milestone(self, n: int) -> Event:
        """Event succeeding once *n* tasks have reached a terminal state."""
        event = self.env.event()
        done = self.tasks_completed + self.tasks_failed
        if done >= n:
            event.succeed(done)
        else:
            heapq.heappush(self._milestones, (n, next(self._milestone_seq), event))
        return event

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _dispatch_leg_cpu(self) -> float:
        """CPU for notify + get-work + work (60 % of the per-task cost)."""
        return 0.6 * self.costs.dispatcher_cpu_per_task(self.config.security)

    def _completion_leg_cpu(self) -> float:
        """CPU for result + ack (40 %), plus one extra bare WS call per
        task when piggy-backing is disabled."""
        cpu = 0.4 * self.costs.dispatcher_cpu_per_task(self.config.security)
        if not self.config.piggyback:
            cpu += self.costs.base_call_cpu * self.costs.security_factor(self.config.security)
        return cpu

    def _piggyback_next(self) -> Optional[TaskRecord]:
        if not self.config.piggyback:
            return None
        # Safe direct pop: if executors are parked on the store the
        # queue is empty, so we never jump ahead of a waiting getter.
        if self.queue.items and not self.queue.getters_waiting:
            found, record = self.queue.take_immediately()
            if found:
                self.queue_gauge.set(self.env.now, len(self.queue.items))
                return record
        return None

    def take_bundle(
        self, first: TaskRecord, max_tasks: int = 10, max_estimate: float = 60.0
    ) -> list[TaskRecord]:
        """Dispatcher→executor bundling (§3.4).

        Starting from *first* (already popped), append further queued
        tasks while every one carries a client runtime estimate and the
        bundle stays under *max_tasks* / *max_estimate* seconds — the
        §3.4 guard against "one executor get[ting] assigned many large
        tasks".  Only active when ``config.executor_bundling`` is set;
        tasks without estimates are never bundled.
        """
        bundle = [first]
        if not self.config.executor_bundling:
            return bundle
        total = first.spec.runtime_estimate
        if total is None:
            return bundle
        while (
            len(bundle) < max_tasks
            and self.queue.items
            and not self.queue.getters_waiting
        ):
            candidate = self.queue.items[0]
            estimate = candidate.spec.runtime_estimate
            if estimate is None or total + estimate > max_estimate:
                break
            self.queue.take_immediately()
            total += estimate
            bundle.append(candidate)
        if len(bundle) > 1:
            self.queue_gauge.set(self.env.now, len(self.queue.items))
        return bundle

    def _charge_cpu(self, seconds: float) -> Generator:
        """Serialise *seconds* of work on the dispatcher CPU, running a
        stop-the-world GC first when churn demands it."""
        with self.cpu.request() as slot:
            yield slot
            if self.jvm is not None:
                self._gc_churn += 1
                if self.jvm.should_collect(self._gc_churn):
                    self._gc_churn = 0
                    pause = self.jvm.pause_duration(self.queued_tasks)
                    if self.tracer is not None:
                        self.tracer.emit(
                            self.env.now, "gc",
                            pause=round(pause, 4), queued=self.queued_tasks,
                        )
                    yield self.env.timeout(pause)
            if seconds > 0:
                yield self.env.timeout(seconds)

    def _finalize(self, record: TaskRecord, result: TaskResult, state: TaskState) -> None:
        record.state = state
        record.timeline.completed = self.env.now
        result.attempts = record.attempts
        result.timeline = record.timeline
        record.result = result
        if state is TaskState.COMPLETED:
            self.tasks_completed += 1
        else:
            self.tasks_failed += 1
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now,
                "complete" if state is TaskState.COMPLETED else "fail",
                task=record.task_id, executor=result.executor_id,
                attempts=record.attempts,
            )
        self.completions.tick(self.env.now)
        record.completion.succeed(result)
        done = self.tasks_completed + self.tasks_failed
        while self._milestones and self._milestones[0][0] <= done:
            _n, _seq, event = heapq.heappop(self._milestones)
            event.succeed(done)

    def _replay_watchdog(self, record: TaskRecord, attempt: int) -> Generator:
        """Re-dispatch a task whose response never arrived (§3.1)."""
        yield self.env.timeout(self.config.replay_timeout)
        if record.state is TaskState.DISPATCHED and record.attempts == attempt:
            self.busy_gauge.add(self.env.now, -1)
            if record.attempts <= self.config.max_retries:
                self.retries += 1
                self._enqueue(record)
            else:
                self._finalize(
                    record,
                    TaskResult(
                        record.task_id,
                        return_code=1,
                        error="replay timeout exceeded",
                        executor_id=record.executor_id,
                    ),
                    TaskState.FAILED,
                )

    def __repr__(self) -> str:
        return (
            f"<SimDispatcher queued={self.queued_tasks} "
            f"busy={self.busy_executors}/{self.registered_executors} "
            f"done={self.tasks_completed}>"
        )
