"""The unified client facade.

Every way of talking to a Falkon deployment — one live dispatcher
(:class:`~repro.live.client.LiveClient`), an in-process deployment
(:class:`~repro.live.local.LocalFalkon`), or a sharded federation
(:class:`~repro.live.federation.ShardRouter`) — implements the same
:class:`FalkonClient` protocol, and :func:`connect` picks the right
implementation from the target string::

    with repro.connect("falkon://10.0.0.1:9000") as falkon:          # one dispatcher
        ...
    with repro.connect("falkon://a:9000,falkon://b:9000") as falkon: # a federation
        ...
    with repro.connect("local", executors=4) as falkon:              # in-process
        results = falkon.map(specs)

The protocol surface:

``submit(tasks)``
    One spec returns its future; a sequence returns a list of futures.
``map(tasks, timeout=None)``
    Submit and wait; results in task order.
``as_completed(futures, timeout=None)``
    Yield futures in settlement order.
``shutdown()``
    Release the client (and, for ``local`` targets, the deployment).
``with ...:``
    Context management calls ``shutdown()`` on exit.
"""

from __future__ import annotations

import queue as _queue
import time
from typing import Iterable, Iterator, Optional, Protocol, Union, runtime_checkable

from repro.live.client import TaskFuture
from repro.live.endpoint import Endpoint
from repro.types import TaskResult, TaskSpec

__all__ = ["FalkonClient", "as_completed", "connect"]


@runtime_checkable
class FalkonClient(Protocol):
    """What every Falkon client facade speaks (structural typing —
    implementations don't inherit from this, they just conform)."""

    def submit(
        self, tasks: Union[TaskSpec, Iterable[TaskSpec]]
    ) -> Union[TaskFuture, list[TaskFuture]]: ...

    def map(
        self, tasks: Iterable[TaskSpec], timeout: Optional[float] = None
    ) -> list[TaskResult]: ...

    def as_completed(
        self, futures: Iterable[TaskFuture], timeout: Optional[float] = None
    ) -> Iterator[TaskFuture]: ...

    def shutdown(self) -> None: ...

    def __enter__(self) -> "FalkonClient": ...

    def __exit__(self, *exc) -> None: ...


def as_completed(
    futures: Iterable[TaskFuture], timeout: Optional[float] = None
) -> Iterator[TaskFuture]:
    """Yield futures as they settle (fulfilled, failed or cancelled),
    like :func:`concurrent.futures.as_completed`.

    ``timeout`` bounds the whole iteration; expiry raises
    ``TimeoutError`` with the number of futures still pending.
    """
    pending = list(futures)
    done_queue: _queue.SimpleQueue = _queue.SimpleQueue()
    for future in pending:
        future.add_done_callback(done_queue.put)
    deadline = None if timeout is None else time.monotonic() + timeout
    for i in range(len(pending)):
        remaining = None if deadline is None else deadline - time.monotonic()
        if remaining is not None and remaining <= 0:
            raise TimeoutError(
                f"{len(pending) - i} futures unfinished after {timeout}s")
        try:
            yield done_queue.get(timeout=remaining)
        except _queue.Empty:
            raise TimeoutError(
                f"{len(pending) - i} futures unfinished after {timeout}s"
            ) from None


def connect(target: str = "local", key: Optional[bytes] = None, **kwargs):
    """Open a :class:`FalkonClient` for *target*.

    ``"local"``
        Stand up an in-process deployment
        (:class:`~repro.live.local.LocalFalkon`; ``kwargs`` are its
        constructor arguments, e.g. ``executors=4``).
    ``"falkon://host:port"`` (or bare ``host:port``)
        Dial one live dispatcher
        (:class:`~repro.live.client.LiveClient`).
    ``"falkon://h1:p1,falkon://h2:p2,..."``
        A federation: route across the listed shards
        (:class:`~repro.live.federation.ShardRouter`).
    """
    if not isinstance(target, str):
        raise TypeError(f"connect target must be a string, got {type(target).__name__}")
    if target == "local" or target.startswith("local?"):
        from repro.live.local import LocalFalkon

        if target.startswith("local?"):
            for pair in target[len("local?"):].split("&"):
                if not pair:
                    continue
                name, _, value = pair.partition("=")
                kwargs.setdefault(name, int(value) if value.isdigit() else value)
        if key is not None:
            raise ValueError("'local' targets manage their own key; "
                             "pass security=... instead")
        return LocalFalkon(**kwargs)
    endpoints = Endpoint.parse_list(target)
    if len(endpoints) > 1:
        from repro.live.federation import ShardRouter

        return ShardRouter(endpoints, key=key, **kwargs)
    from repro.live.client import LiveClient

    return LiveClient(endpoints[0], key=key, **kwargs)
