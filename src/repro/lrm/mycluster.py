"""MyCluster-style glide-in virtual clusters.

MyCluster [11] "creates 'personal clusters' running Condor or SGE":
one batch allocation on the host LRM seeds a dedicated pool managed by
a personal scheduler.  §4.1 uses exactly this to measure Condor v6.7.2
("we used MyCluster to create a 64-node Condor v6.7.2 pool via PBS
submissions").

The virtual pool mirrors the allocated machines into a private
:class:`Cluster` managed by its own :class:`BatchScheduler`; the host
machines stay allocated to the glide-in job for the pool's lifetime.
MyCluster authenticates once at setup ("a one time cost"), after which
no security is used — matching the paper's observation.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.cluster.node import Cluster, ClusterSpec, Machine, NodeSpec
from repro.lrm.base import BatchScheduler, LRMConfig, LRMJob
from repro.sim import Environment, Event, Interrupt

__all__ = ["MyCluster"]


class MyCluster:
    """A personal cluster glide-in.

    Parameters
    ----------
    env, host_lrm:
        The host batch scheduler the glide-in job is submitted to.
    nodes:
        Width of the glide-in allocation.
    personal_config:
        Scheduler flavour inside the virtual cluster (e.g. Condor
        v6.7.2's :data:`repro.lrm.condor.CONDOR_672_CONFIG`).
    walltime:
        Lifetime of the glide-in allocation.
    setup_overhead:
        One-time authentication/authorization cost at pool creation.
    """

    def __init__(
        self,
        env: Environment,
        host_lrm: BatchScheduler,
        nodes: int,
        personal_config: LRMConfig,
        walltime: float = 4 * 3600.0,
        setup_overhead: float = 10.0,
    ) -> None:
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        if setup_overhead < 0:
            raise ValueError("setup_overhead must be >= 0")
        self.env = env
        self.host_lrm = host_lrm
        self.nodes = nodes
        self.personal_config = personal_config
        self.walltime = walltime
        self.setup_overhead = setup_overhead
        #: Succeeds with the personal BatchScheduler once the pool is up.
        self.ready: Event = env.event()
        self.scheduler: Optional[BatchScheduler] = None
        self._glidein_job: Optional[LRMJob] = None
        env.process(self._bootstrap(), name="mycluster-bootstrap")

    def _bootstrap(self) -> Generator:
        # One-time authenticated setup.
        yield self.env.timeout(self.setup_overhead)
        pool_up = self.env.event()

        def glidein_body(env: Environment, job: LRMJob, machines: list[Machine]) -> Generator:
            # The personal scheduler manages a mirror of the allocation;
            # the host machines remain bound to this glide-in job.
            spec = ClusterSpec(
                name=f"mycluster-{self.personal_config.name}",
                nodes=len(machines),
                node=machines[0].spec if machines else NodeSpec(),
            )
            virtual = Cluster(env, spec)
            self.scheduler = BatchScheduler(env, virtual, self.personal_config)
            pool_up.succeed(self.scheduler)
            # Hold the allocation until the walltime/cancel tears it down.
            try:
                yield env.timeout(float("inf"))
            except Interrupt:
                pass

        self._glidein_job = self.host_lrm.submit(
            nodes=self.nodes,
            walltime=self.walltime,
            body=glidein_body,
            name="mycluster-glidein",
        )
        scheduler = yield pool_up
        self.ready.succeed(scheduler)

    def shutdown(self) -> None:
        """Tear the virtual cluster down, releasing the host allocation."""
        if self._glidein_job is not None:
            self.host_lrm.cancel(self._glidein_job)

    def __repr__(self) -> str:
        state = "up" if self.scheduler is not None else "starting"
        return f"<MyCluster {self.personal_config.name} nodes={self.nodes} {state}>"
