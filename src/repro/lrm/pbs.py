"""PBS v2.1.8 calibration.

§4.1: "we submitted 100 short tasks (sleep 0) and measured the time to
completion on the 64 available nodes.  The experiment took on average
224 seconds for 10 runs netting 0.45 tasks/sec."  With a serialized
per-job start overhead of 2.2 s the 100 jobs take ~220 s, matching.

§4.6: allocation latency varied "between 5 and 65 secs, depending on
when a creation request is submitted relative to the PBS scheduler
polling loop, which we believe occurs at 60 second intervals."
"""

from __future__ import annotations

from repro.cluster.node import Cluster
from repro.lrm.base import BatchScheduler, LRMConfig
from repro.sim import Environment

__all__ = ["PBS_CONFIG", "make_pbs"]

#: PBS v2.1.8 as measured on TG_ANL (Table 2 / §4.6).
PBS_CONFIG = LRMConfig(
    name="pbs",
    poll_interval=60.0,
    start_overhead=2.2,   # 1/0.45 s ≈ 2.2 s serialized per job
    cleanup_delay=2.3,    # keeps Table 4's GRAM4+PBS wasted time ≈ 41 s/task
)


def make_pbs(env: Environment, cluster: Cluster) -> BatchScheduler:
    """A PBS v2.1.8 instance managing *cluster*."""
    return BatchScheduler(env, cluster, PBS_CONFIG)
