"""Generic simulated batch scheduler.

The model captures the three LRM behaviours the paper's comparisons
hinge on:

1. **Poll-loop latency** — jobs are only considered at periodic
   scheduling cycles ("the PBS scheduler polling loop, which we believe
   occurs at 60 second intervals", §4.6), so allocation latency ranges
   from ``start_overhead`` up to ``poll_interval + start_overhead``.
2. **Serialized job-start overhead** — within a cycle, job starts cost
   ``start_overhead`` seconds each, giving PBS's measured 0.45 jobs/s
   and Condor's 0.49 jobs/s ceilings for `sleep 0` jobs (§4.1).
3. **Cleanup lag** — after a job finishes, its machines stay
   unavailable for ``cleanup_delay`` ("PBS takes even longer to make
   the machine available again", §4.6).

Jobs either carry a *body* (a generator run on the allocated machines;
the job completes when the body returns — used for real workloads and
for hosting Falkon executors) or are *lease-style* (no body; they hold
machines until cancelled or until their walltime expires — not used by
the paper's experiments but part of a complete LRM surface).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Generator, Optional

from repro.cluster.node import Cluster, Machine
from repro.errors import ProvisioningError
from repro.sim import Environment, Event, Gauge, Interrupt

__all__ = ["JobState", "LRMConfig", "LRMJob", "BatchScheduler"]


class JobState(Enum):
    """Lifecycle of an LRM job."""

    QUEUED = "queued"
    STARTING = "starting"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELED = "canceled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELED)


@dataclass(frozen=True)
class LRMConfig:
    """Calibration parameters of one batch-scheduler flavour."""

    name: str = "lrm"
    #: Seconds between scheduling cycles.
    poll_interval: float = 60.0
    #: Serialized seconds of scheduler work per job start.
    start_overhead: float = 2.2
    #: Seconds a node remains unavailable after its job ends.
    cleanup_delay: float = 2.3
    #: Default walltime for lease-style jobs.
    default_walltime: float = 3600.0

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.start_overhead < 0 or self.cleanup_delay < 0:
            raise ValueError("overheads must be >= 0")
        if self.default_walltime <= 0:
            raise ValueError("default_walltime must be positive")


#: Body signature: ``body(env, job, machines)`` -> generator.
JobBody = Callable[[Environment, "LRMJob", list[Machine]], Generator]


@dataclass
class LRMJob:
    """One batch job."""

    job_id: str
    nodes: int
    walltime: float
    body: Optional[JobBody]
    name: str
    submit_time: float
    state: JobState = JobState.QUEUED
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    machines: list[Machine] = field(default_factory=list)
    #: Set when cancel() arrives before the job's runner process exists.
    cancel_requested: bool = False
    #: Succeeds with the machine list when the job starts.
    started: Event = None  # type: ignore[assignment]
    #: Succeeds with the final JobState when the job reaches a terminal state.
    completed: Event = None  # type: ignore[assignment]

    @property
    def queue_wait(self) -> float:
        """Seconds spent queued (NaN until started)."""
        if self.start_time is None:
            return float("nan")
        return self.start_time - self.submit_time


class BatchScheduler:
    """FIFO batch scheduler over one :class:`Cluster`.

    Subclass-free by design: PBS/Condor flavours differ only in their
    :class:`LRMConfig` (see :mod:`repro.lrm.pbs` / :mod:`repro.lrm.condor`).
    """

    def __init__(self, env: Environment, cluster: Cluster, config: LRMConfig) -> None:
        self.env = env
        self.cluster = cluster
        self.config = config
        self._queue: list[LRMJob] = []
        self._running: dict[str, "Any"] = {}  # job_id -> runner Process
        self._job_seq = itertools.count(1)
        self._cycle_wakeup: Optional[Event] = None
        self.queue_gauge = Gauge(f"{config.name}/queued")
        self.running_gauge = Gauge(f"{config.name}/running")
        self.jobs_submitted = 0
        self.jobs_completed = 0
        env.process(self._scheduler_loop(), name=f"{config.name}-scheduler")

    # -- public API --------------------------------------------------------
    def submit(
        self,
        nodes: int,
        walltime: Optional[float] = None,
        body: Optional[JobBody] = None,
        name: str = "",
    ) -> LRMJob:
        """Queue a job for *nodes* machines.

        Returns immediately; wait on ``job.started`` / ``job.completed``.
        Jobs wider than the cluster's obtainable node count fail at
        submission (the LRM would reject them).
        """
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        if nodes > self.cluster.free_limit:
            raise ProvisioningError(
                f"{self.config.name}: job of {nodes} nodes exceeds cluster limit "
                f"{self.cluster.free_limit}"
            )
        job = LRMJob(
            job_id=f"{self.config.name}-job-{next(self._job_seq):05d}",
            nodes=nodes,
            walltime=self.config.default_walltime if walltime is None else float(walltime),
            body=body,
            name=name or "job",
            submit_time=self.env.now,
            started=self.env.event(),
            completed=self.env.event(),
        )
        if job.walltime <= 0:
            raise ValueError("walltime must be positive")
        self._queue.append(job)
        self.jobs_submitted += 1
        self.queue_gauge.set(self.env.now, len(self._queue))
        if self._cycle_wakeup is not None and not self._cycle_wakeup.triggered:
            self._cycle_wakeup.succeed(None)
        return job

    def cancel(self, job: LRMJob) -> None:
        """Cancel a queued or running job.

        Queued jobs leave the queue immediately; running jobs have
        their body interrupted and machines released (after cleanup).
        Cancelling a terminal job is a no-op.
        """
        if job.state is JobState.QUEUED:
            self._queue.remove(job)
            self.queue_gauge.set(self.env.now, len(self._queue))
            self._finish(job, JobState.CANCELED)
        elif job.state in (JobState.STARTING, JobState.RUNNING):
            runner = self._running.get(job.job_id)
            if runner is not None and runner.is_alive:
                runner.interrupt("canceled")
            else:
                # Mid-start: the runner does not exist yet; it honours
                # the flag as soon as it begins.
                job.cancel_requested = True
        # terminal: no-op

    def free_nodes(self) -> int:
        """Nodes the scheduler could still allocate (the §3.1
        'available resources' system function used by the AVAILABLE
        acquisition policy)."""
        return self.cluster.free_count()

    @property
    def queued_jobs(self) -> int:
        return len(self._queue)

    # -- internals ----------------------------------------------------------
    def _finish(self, job: LRMJob, state: JobState) -> None:
        job.state = state
        job.end_time = self.env.now
        self.jobs_completed += 1
        if not job.started.triggered:
            # Never started: resolve waiter with an empty machine list so
            # `yield job.started` does not hang; completed tells the story.
            job.started.fail(ProvisioningError(f"{job.job_id} {state.value} before start"))
            job.started.defused = True
        if not job.completed.triggered:
            job.completed.succeed(state)

    def _scheduler_loop(self):
        """Scheduling cycles aligned to absolute poll ticks.

        The loop sleeps while the queue is empty (so simulations end
        when all work is done) and otherwise only acts at multiples of
        ``poll_interval`` — giving the paper's 5–65 s allocation
        latency for a 60 s poll loop.
        """
        poll = self.config.poll_interval
        last_tick = -poll  # the tick the previous cycle ran at
        while True:
            if not self._queue:
                self._cycle_wakeup = self.env.event()
                yield self._cycle_wakeup
                self._cycle_wakeup = None
            # Align to the next absolute poll tick (a submission right
            # on a tick is processed immediately, but never re-run a
            # cycle at the tick we already acted on).
            tick = math.ceil((self.env.now - 1e-9) / poll) * poll
            if tick <= last_tick + 1e-9:
                tick = last_tick + poll
            if tick > self.env.now:
                yield self.env.timeout(tick - self.env.now)
            last_tick = tick
            # Strict FIFO: start queue-head jobs while they fit.
            while self._queue and self._queue[0].nodes <= self.cluster.free_count():
                job = self._queue.pop(0)
                self.queue_gauge.set(self.env.now, len(self._queue))
                job.state = JobState.STARTING
                # Serialized scheduler work per start.
                yield self.env.timeout(self.config.start_overhead)
                try:
                    machines = self.cluster.allocate(job.nodes, owner=job.job_id)
                except RuntimeError:
                    # Free nodes evaporated while we were starting the
                    # job (a competing completion/cleanup race); requeue
                    # at the head for the next cycle.
                    job.state = JobState.QUEUED
                    self._queue.insert(0, job)
                    self.queue_gauge.set(self.env.now, len(self._queue))
                    break
                job.machines = machines
                runner = self.env.process(
                    self._job_runner(job, machines), name=f"{job.job_id}-runner"
                )
                self._running[job.job_id] = runner
            # Loop: an occupied queue head waits for the next tick via
            # the alignment above; an empty queue waits for a submit.

    def _job_runner(self, job: LRMJob, machines: list[Machine]):
        job.state = JobState.RUNNING
        job.start_time = self.env.now
        self.running_gauge.add(self.env.now, 1)
        job.started.succeed(machines)
        final = JobState.DONE
        body_proc = None
        try:
            if job.cancel_requested:
                final = JobState.CANCELED
            elif job.body is not None:
                body_proc = self.env.process(
                    job.body(self.env, job, machines), name=f"{job.job_id}-body"
                )
                deadline = self.env.timeout(job.walltime)
                yield self.env.any_of([body_proc, deadline])
                if body_proc.is_alive:
                    # Walltime exceeded: the teardown below kills the body.
                    final = JobState.FAILED
                elif not body_proc.ok:
                    final = JobState.FAILED
            else:
                # Lease-style job: hold machines until walltime or cancel.
                yield self.env.timeout(job.walltime)
        except Interrupt:
            final = JobState.CANCELED
        except Exception:
            # The job body raised: the job fails, machines still clean up.
            final = JobState.FAILED
        if body_proc is not None and body_proc.is_alive:
            # Cancel/walltime tore the job down around a live body.
            body_proc.defused = True
            body_proc.interrupt("job teardown")
        # Cleanup: nodes stay unavailable a little longer.
        if self.config.cleanup_delay > 0:
            try:
                yield self.env.timeout(self.config.cleanup_delay)
            except Interrupt:
                pass  # cancel during cleanup changes nothing
        self.cluster.release(machines)
        self.running_gauge.add(self.env.now, -1)
        self._running.pop(job.job_id, None)
        self._finish(job, final)

    def __repr__(self) -> str:
        return (
            f"<BatchScheduler {self.config.name} queued={len(self._queue)} "
            f"running={len(self._running)}>"
        )
