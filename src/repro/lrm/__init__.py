"""Local Resource Manager (LRM) substrate.

Simulated batch schedulers with the characteristics the paper measured:

* :mod:`repro.lrm.base` — generic batch scheduler: FIFO job queue, a
  periodic scheduling cycle (poll loop), serialized per-job start
  overhead, and post-job cleanup before nodes become reusable.
* :mod:`repro.lrm.pbs` — PBS v2.1.8 calibration (0.45 jobs/s, 60 s
  poll loop).
* :mod:`repro.lrm.condor` — Condor v6.7.2 calibration (0.49 jobs/s)
  plus the derived v6.9.3 profile (11 jobs/s, §4.4).
* :mod:`repro.lrm.gram` — GRAM4 gateway: per-task state-transition
  overheads and ~0.5/s allocation-request handling.
* :mod:`repro.lrm.mycluster` — glide-in virtual clusters (MyCluster):
  one LRM allocation hosting a dedicated personal scheduler.
"""

from repro.lrm.base import BatchScheduler, JobState, LRMConfig, LRMJob
from repro.lrm.pbs import PBS_CONFIG, make_pbs
from repro.lrm.condor import CONDOR_672_CONFIG, CONDOR_693_CONFIG, make_condor
from repro.lrm.gram import Gram4Gateway, GramConfig
from repro.lrm.mycluster import MyCluster

__all__ = [
    "BatchScheduler",
    "JobState",
    "LRMConfig",
    "LRMJob",
    "PBS_CONFIG",
    "make_pbs",
    "CONDOR_672_CONFIG",
    "CONDOR_693_CONFIG",
    "make_condor",
    "Gram4Gateway",
    "GramConfig",
    "MyCluster",
]
