"""Condor calibrations.

Two profiles:

* **v6.7.2** — measured in §4.1 via a MyCluster-provisioned pool:
  "100 short tasks over Condor.  The total time was on average 203
  seconds for 10 runs netting 0.49 tasks/sec."  Condor's matchmaking
  cycle is quicker than PBS's poll loop (negotiator interval ~20 s).
* **v6.9.3** — the development version's throughput of 11 tasks/s is
  *cited, not measured* ([34], §4.4); the paper derives its efficiency
  curve from a 0.0909 s/task overhead.  We encode the same figure.
"""

from __future__ import annotations

from repro.cluster.node import Cluster
from repro.lrm.base import BatchScheduler, LRMConfig
from repro.sim import Environment

__all__ = ["CONDOR_672_CONFIG", "CONDOR_693_CONFIG", "make_condor"]

#: Condor v6.7.2 as measured (Table 2).
CONDOR_672_CONFIG = LRMConfig(
    name="condor-6.7.2",
    poll_interval=20.0,    # negotiator cycle
    start_overhead=2.03,   # 1/0.49 s serialized per job
    cleanup_delay=1.0,
)

#: Condor v6.9.3 as cited in [34] (11 tasks/s → 90.9 ms/task).
CONDOR_693_CONFIG = LRMConfig(
    name="condor-6.9.3",
    poll_interval=5.0,
    start_overhead=1.0 / 11.0,
    cleanup_delay=0.5,
)

def make_condor(
    env: Environment, cluster: Cluster, version: str = "6.7.2"
) -> BatchScheduler:
    """A Condor pool of the given *version* managing *cluster*."""
    configs = {"6.7.2": CONDOR_672_CONFIG, "6.9.3": CONDOR_693_CONFIG}
    try:
        config = configs[version]
    except KeyError:
        raise ValueError(f"unknown Condor version {version!r}; have {sorted(configs)}") from None
    return BatchScheduler(env, cluster, config)
