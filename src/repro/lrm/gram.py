"""GRAM4 gateway model.

GRAM4 (Globus grid resource allocation manager) fronts an LRM: clients
submit jobs through it without knowing LRM details.  The paper uses it
two ways, and so do we:

* **Task submission** (the GRAM4+PBS baseline): each task becomes a
  separate one-node job.  GRAM4 adds per-task overhead around the
  actual execution — Table 3 reports a measured execution time of
  56.5 s for tasks averaging 17.8 s, i.e. ≈38.7 s of per-task
  preparation/cleanup between the "Active" and "Done" notifications.
* **Resource allocation** (Falkon's provisioner): "Creation requests
  are issued via GRAM4 to abstract LRM details" (§3.2).  GRAM4+PBS
  handles such requests at ~0.5/s (§4.6), which the gateway's
  serialized request handling reproduces (PBS's own 2.2 s start
  overhead dominates the budget; the gateway adds its share).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.lrm.base import BatchScheduler, JobBody, JobState, LRMJob
from repro.sim import Environment, Resource
from repro.types import TaskResult, TaskSpec, TaskTimeline

__all__ = ["GramConfig", "Gram4Gateway"]


@dataclass(frozen=True)
class GramConfig:
    """GRAM4 gateway overheads."""

    #: Serialized gateway work per request (auth, job description
    #: translation, state-callback registration).
    request_overhead: float = 0.2
    #: Seconds between the LRM starting the job and the task's actual
    #: execution beginning (staging, jobmanager startup) — counted
    #: inside GRAM4's reported "execution time".
    pre_exec_overhead: float = 20.0
    #: Seconds between the task's exit and GRAM4's "Done" notification
    #: (cleanup, stdout/err retrieval, state propagation).  Together
    #: with ``pre_exec_overhead`` and the LRM's 2.3 s node cleanup this
    #: lands Table 3's 56.5 s measured execution for 17.8 s tasks and
    #: Table 4's ≈41 s/task of wasted resource time.
    post_exec_overhead: float = 16.4

    def __post_init__(self) -> None:
        if self.request_overhead < 0 or self.pre_exec_overhead < 0 or self.post_exec_overhead < 0:
            raise ValueError("overheads must be >= 0")


class Gram4Gateway:
    """A GRAM4 endpoint in front of one :class:`BatchScheduler`."""

    def __init__(
        self, env: Environment, lrm: BatchScheduler, config: Optional[GramConfig] = None
    ) -> None:
        self.env = env
        self.lrm = lrm
        self.config = config or GramConfig()
        # One gateway processes requests serially.
        self._gate = Resource(env, capacity=1)
        self.requests_handled = 0
        self.tasks_run = 0

    # -- resource allocation (provisioner path) ------------------------------
    def allocate(
        self,
        nodes: int,
        walltime: float,
        body: Optional[JobBody] = None,
        name: str = "allocation",
    ) -> Generator:
        """Generator: submit an allocation request; returns the LRMJob.

        Usage: ``job = yield from gateway.allocate(...)``.
        """
        with self._gate.request() as slot:
            yield slot
            yield self.env.timeout(self.config.request_overhead)
        self.requests_handled += 1
        return self.lrm.submit(nodes=nodes, walltime=walltime, body=body, name=name)

    def cancel(self, job: LRMJob) -> None:
        """Cancel an allocation (forwarded to the LRM)."""
        self.lrm.cancel(job)

    def free_nodes(self) -> int:
        """LRM-reported free nodes (the AVAILABLE policy's input)."""
        return self.lrm.free_nodes()

    # -- per-task submission (GRAM4+PBS baseline path) ------------------------
    def run_task(self, task: TaskSpec, walltime: Optional[float] = None) -> Generator:
        """Generator: run *task* as a separate one-node GRAM4 job.

        Returns a :class:`TaskResult` whose timeline uses GRAM4's state
        notifications: ``dispatched`` is the "Active" transition (PBS
        placed the job on a machine), ``completed`` is "Done".  The
        execution time therefore *includes* GRAM4's pre/post overheads,
        exactly as the paper measures it.
        """
        timeline = TaskTimeline(submitted=self.env.now)
        cfg = self.config
        job_walltime = walltime if walltime is not None else (
            cfg.pre_exec_overhead + task.duration + cfg.post_exec_overhead + 3600.0
        )

        def body(env: Environment, job: LRMJob, machines) -> Generator:
            yield env.timeout(cfg.pre_exec_overhead)
            yield env.timeout(task.duration)
            yield env.timeout(cfg.post_exec_overhead)

        with self._gate.request() as slot:
            yield slot
            yield self.env.timeout(cfg.request_overhead)
        self.requests_handled += 1
        job = self.lrm.submit(nodes=1, walltime=job_walltime, body=body, name=task.task_id)
        machines = yield job.started
        timeline.dispatched = self.env.now  # GRAM4 "Active" notification
        final = yield job.completed
        timeline.completed = self.env.now  # GRAM4 "Done" notification
        self.tasks_run += 1
        executor = machines[0].name if machines else ""
        if final is JobState.DONE:
            return TaskResult(task.task_id, return_code=0, executor_id=executor, timeline=timeline)
        return TaskResult(
            task.task_id,
            return_code=1,
            executor_id=executor,
            error=f"job ended {final.value}",
            timeline=timeline,
        )

    def __repr__(self) -> str:
        return f"<Gram4Gateway over {self.lrm.config.name} handled={self.requests_handled}>"
