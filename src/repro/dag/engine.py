"""The ready-task scheduler.

The engine walks a :class:`~repro.dag.graph.Workflow`, submitting every
task whose dependencies are satisfied to an execution provider, exactly
as Swift/Karajan feed Falkon or GRAM4 (§5).  Failed tasks fail their
transitive dependents (no partial re-execution — Swift's restart logs
are out of scope; the paper's runs assume success).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.dag.graph import TaskNode, Workflow
from repro.dag.providers import ExecutionProvider
from repro.sim import Environment, Store
from repro.types import TaskResult

__all__ = ["WorkflowRunResult", "WorkflowEngine"]


@dataclass
class WorkflowRunResult:
    """Outcome of one workflow execution."""

    workflow: Workflow
    results: dict[str, TaskResult]
    started_at: float
    finished_at: float
    #: Wall-clock when each stage's last task completed.
    stage_finish: dict[str, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.finished_at - self.started_at

    @property
    def ok(self) -> bool:
        return len(self.results) == len(self.workflow) and all(
            r.ok for r in self.results.values()
        )

    def stage_elapsed(self) -> dict[str, float]:
        """Per-stage elapsed time: previous stage's finish → this one's.

        Stages are taken in workflow insertion order, which for the
        paper's pipelines is also execution order.
        """
        elapsed: dict[str, float] = {}
        prev = self.started_at
        for stage in self.workflow.stages():
            end = self.stage_finish.get(stage, prev)
            elapsed[stage] = max(0.0, end - prev)
            prev = max(prev, end)
        return elapsed


class WorkflowEngine:
    """Executes workflows over an :class:`ExecutionProvider`."""

    def __init__(self, env: Environment, provider: ExecutionProvider) -> None:
        self.env = env
        self.provider = provider

    def run(self, workflow: Workflow, checkpoint=None) -> Generator:
        """Generator: execute *workflow*; returns a
        :class:`WorkflowRunResult`.  Use as
        ``result = yield env.process(engine.run(wf))`` or via
        :meth:`run_to_completion`.

        With a :class:`~repro.dag.checkpoint.WorkflowCheckpoint`, tasks
        already recorded are skipped (their recorded results are
        returned) and fresh completions are recorded — Swift-style
        restart semantics.
        """
        workflow.validate()
        started_at = self.env.now
        results: dict[str, TaskResult] = {}
        stage_finish: dict[str, float] = {}
        remaining_deps = {node.task_id: len(node.deps) for node in workflow.tasks()}
        failed_skipped: set[str] = set()
        mailbox: Store = Store(self.env)

        already_done: set[str] = set()
        if checkpoint is not None:
            already_done = {
                tid for tid in checkpoint.completed_ids() if tid in workflow
            }
            for tid in already_done:
                results[tid] = checkpoint.result(tid)
            for tid in already_done:
                for dep_id in workflow.dependents(tid):
                    remaining_deps[dep_id] -= 1

        def watch(node: TaskNode, completion) -> Generator:
            result = yield completion
            yield mailbox.put((node, result))

        def submit(nodes: list[TaskNode]) -> Generator:
            events = yield from self.provider.submit_wave([n.spec for n in nodes])
            for node, event in zip(nodes, events):
                self.env.process(watch(node, event), name=f"watch-{node.task_id}")

        def skip_dependents(task_id: str) -> None:
            for dep_id in workflow.dependents(task_id):
                if dep_id in failed_skipped:
                    continue
                failed_skipped.add(dep_id)
                results[dep_id] = TaskResult(
                    dep_id, return_code=1, error=f"dependency {task_id} failed"
                )
                skip_dependents(dep_id)

        ready = [
            node
            for node in workflow.tasks()
            if remaining_deps[node.task_id] == 0 and node.task_id not in already_done
        ]
        outstanding = 0
        if ready:
            outstanding += len(ready)
            yield from submit(ready)

        while outstanding > 0:
            node, result = yield mailbox.get()
            outstanding -= 1
            results[node.task_id] = result
            stage_finish[node.spec.stage] = self.env.now
            if checkpoint is not None:
                checkpoint.record(result)
            if not result.ok:
                skip_dependents(node.task_id)
            newly_ready: list[TaskNode] = []
            for dep_id in workflow.dependents(node.task_id):
                remaining_deps[dep_id] -= 1
                if remaining_deps[dep_id] == 0 and dep_id not in failed_skipped:
                    newly_ready.append(workflow.node(dep_id))
            if newly_ready:
                outstanding += len(newly_ready)
                yield from submit(newly_ready)

        return WorkflowRunResult(
            workflow=workflow,
            results=results,
            started_at=started_at,
            finished_at=self.env.now,
            stage_finish=stage_finish,
        )

    def run_to_completion(self, workflow: Workflow, checkpoint=None) -> WorkflowRunResult:
        """Run the simulation until *workflow* finishes; return results."""
        proc = self.env.process(
            self.run(workflow, checkpoint=checkpoint), name=f"engine-{workflow.name}"
        )
        return self.env.run(until=proc)
