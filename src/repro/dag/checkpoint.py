"""Workflow checkpointing (Swift-style restart logs).

Swift's headline reliability feature is the *restart log*: a workflow
that dies partway (provider outage, resource loss) can be re-run and
only the tasks whose outputs are missing execute again.  The paper
leans on this division of labour — Falkon "can rely on ... clients for
others (e.g., recovery, ...)" (§2) — so the client-side engine carries
the recovery mechanism here.

A :class:`WorkflowCheckpoint` records successful task results; passing
it to :meth:`WorkflowEngine.run` skips recorded tasks.  It serialises
to/from JSON so live workflows can persist it across process restarts.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.types import TaskResult

__all__ = ["WorkflowCheckpoint"]


class WorkflowCheckpoint:
    """Append-only record of completed task results."""

    def __init__(self) -> None:
        self._results: dict[str, TaskResult] = {}

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._results

    def record(self, result: TaskResult) -> None:
        """Record a *successful* result (failures must re-run)."""
        if result.ok:
            self._results[result.task_id] = result

    def result(self, task_id: str) -> Optional[TaskResult]:
        return self._results.get(task_id)

    def completed_ids(self) -> set[str]:
        return set(self._results)

    # -- persistence ---------------------------------------------------------
    def to_json(self) -> str:
        from repro.live.protocol import result_to_dict

        return json.dumps(
            {"results": [result_to_dict(r) for r in self._results.values()]}
        )

    @classmethod
    def from_json(cls, text: str) -> "WorkflowCheckpoint":
        from repro.live.protocol import result_from_dict

        checkpoint = cls()
        for data in json.loads(text).get("results", ()):
            checkpoint.record(result_from_dict(data))
        return checkpoint

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "WorkflowCheckpoint":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def __repr__(self) -> str:
        return f"<WorkflowCheckpoint completed={len(self._results)}>"
