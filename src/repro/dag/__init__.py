"""Mini-Swift: a data-driven DAG workflow engine.

§5 runs the fMRI and Montage applications through Swift/Karajan, which
feeds *ready* tasks (those whose inputs exist) to an execution
*provider* — Falkon, GRAM4+PBS, or clustered GRAM4 submission.  This
package reproduces exactly that surface:

* :mod:`repro.dag.graph` — the task DAG with dependency tracking.
* :mod:`repro.dag.engine` — the ready-task scheduler.
* :mod:`repro.dag.providers` — execution providers: per-task Falkon
  dispatch, per-task GRAM4+PBS jobs, and clustered GRAM4 submission
  (Swift's task clustering, §5.1).
"""

from repro.dag.graph import Workflow, TaskNode
from repro.dag.engine import WorkflowEngine, WorkflowRunResult
from repro.dag.checkpoint import WorkflowCheckpoint
from repro.dag.providers import (
    ExecutionProvider,
    FalkonProvider,
    GramProvider,
    ClusteredGramProvider,
)

__all__ = [
    "Workflow",
    "TaskNode",
    "WorkflowEngine",
    "WorkflowRunResult",
    "WorkflowCheckpoint",
    "ExecutionProvider",
    "FalkonProvider",
    "GramProvider",
    "ClusteredGramProvider",
]
