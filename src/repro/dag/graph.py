"""Task DAGs for the workflow engine.

A :class:`Workflow` is a set of tasks with dependency edges.  Tasks
become *ready* when every dependency has completed — the data-driven
model of §1 ("individual tasks wait for input to be available, perform
computation, and produce output").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import WorkflowError
from repro.types import TaskSpec

__all__ = ["TaskNode", "Workflow"]


@dataclass
class TaskNode:
    """One workflow vertex: a task spec plus its dependency ids."""

    spec: TaskSpec
    deps: tuple[str, ...] = ()

    @property
    def task_id(self) -> str:
        return self.spec.task_id


class Workflow:
    """A directed acyclic graph of tasks."""

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._nodes: dict[str, TaskNode] = {}
        self._dependents: dict[str, list[str]] = {}

    # -- construction --------------------------------------------------------
    def add_task(self, spec: TaskSpec, after: Iterable[str] = ()) -> TaskNode:
        """Add *spec*, depending on the task ids in *after*.

        Dependencies may be added before their targets exist; call
        :meth:`validate` once the graph is complete.
        """
        if spec.task_id in self._nodes:
            raise WorkflowError(f"duplicate task id {spec.task_id!r}")
        node = TaskNode(spec=spec, deps=tuple(after))
        self._nodes[spec.task_id] = node
        for dep in node.deps:
            self._dependents.setdefault(dep, []).append(spec.task_id)
        return node

    # -- queries ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._nodes

    def node(self, task_id: str) -> TaskNode:
        return self._nodes[task_id]

    def tasks(self) -> list[TaskNode]:
        """All nodes in insertion order."""
        return list(self._nodes.values())

    def dependents(self, task_id: str) -> list[str]:
        """Tasks that list *task_id* as a dependency."""
        return list(self._dependents.get(task_id, ()))

    def roots(self) -> list[TaskNode]:
        """Tasks with no dependencies (initially ready)."""
        return [node for node in self._nodes.values() if not node.deps]

    def stages(self) -> dict[str, list[TaskNode]]:
        """Nodes grouped by their spec's ``stage`` label, in insertion
        order of first appearance."""
        grouped: dict[str, list[TaskNode]] = {}
        for node in self._nodes.values():
            grouped.setdefault(node.spec.stage, []).append(node)
        return grouped

    def total_cpu_seconds(self) -> float:
        """Sum of simulated task durations."""
        return sum(node.spec.duration for node in self._nodes.values())

    # -- validation ----------------------------------------------------------
    def validate(self) -> "Workflow":
        """Check for unknown dependencies and cycles; return self."""
        for node in self._nodes.values():
            for dep in node.deps:
                if dep not in self._nodes:
                    raise WorkflowError(
                        f"task {node.task_id!r} depends on unknown task {dep!r}"
                    )
        self.topological_order()
        return self

    def topological_order(self) -> list[TaskNode]:
        """Kahn's algorithm; raises :class:`WorkflowError` on a cycle."""
        indegree = {tid: len(node.deps) for tid, node in self._nodes.items()}
        frontier = [tid for tid, deg in indegree.items() if deg == 0]
        order: list[TaskNode] = []
        while frontier:
            tid = frontier.pop()
            order.append(self._nodes[tid])
            for dependent in self._dependents.get(tid, ()):
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    frontier.append(dependent)
        if len(order) != len(self._nodes):
            cyclic = sorted(tid for tid, deg in indegree.items() if deg > 0)
            raise WorkflowError(f"workflow contains a cycle among {cyclic[:5]}...")
        return order

    def ideal_makespan(self, processors: int) -> float:
        """Lower bound on makespan with *processors* machines.

        A list schedule over the topological order: each task starts at
        the later of (its latest dependency's finish, the earliest free
        processor).  Communication and dispatch are free — the "ideal"
        column of Tables 3–4.
        """
        if processors <= 0:
            raise ValueError("processors must be positive")
        import heapq

        # More processors than tasks is equivalent to one per task
        # (callers pass huge counts to mean "unbounded parallelism").
        processors = min(processors, max(1, len(self._nodes)))
        finish: dict[str, float] = {}
        free: list[float] = [0.0] * processors
        heapq.heapify(free)
        for node in self.topological_order():
            deps_done = max((finish[d] for d in node.deps), default=0.0)
            proc_free = heapq.heappop(free)
            start = max(deps_done, proc_free)
            end = start + node.spec.duration
            finish[node.task_id] = end
            heapq.heappush(free, end)
        return max(finish.values(), default=0.0)

    def __repr__(self) -> str:
        return f"<Workflow {self.name!r} tasks={len(self._nodes)}>"
