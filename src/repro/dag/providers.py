"""Execution providers: how ready tasks reach compute resources.

Three providers mirror §5.1's three measured configurations:

* :class:`FalkonProvider` — tasks go to a Falkon dispatcher ("Swift
  submitting via Falkon").
* :class:`GramProvider` — each task becomes a separate GRAM4+PBS job
  ("task submission via GRAM4+PBS").
* :class:`ClusteredGramProvider` — ready tasks are clustered into a
  bounded number of groups, each group running as one GRAM4+PBS job
  that executes its tasks sequentially ("a variant ... in which tasks
  are clustered into eight groups").
"""

from __future__ import annotations

import math
from typing import Generator, Optional

from repro.core.dispatcher import SimDispatcher
from repro.lrm.base import LRMJob
from repro.lrm.gram import Gram4Gateway
from repro.sim import Environment, Event
from repro.types import TaskResult, TaskSpec, TaskTimeline

__all__ = [
    "ExecutionProvider",
    "FalkonProvider",
    "GramProvider",
    "ClusteredGramProvider",
]


class ExecutionProvider:
    """Submits waves of ready tasks; yields one completion event each."""

    env: Environment

    def submit_wave(self, specs: list[TaskSpec]) -> Generator:
        """Generator: submit *specs*; returns a list of events, one per
        spec (same order), each succeeding with a
        :class:`~repro.types.TaskResult`."""
        raise NotImplementedError


class FalkonProvider(ExecutionProvider):
    """Dispatch through a Falkon dispatcher.

    The provider speaks the client protocol: one bundled submit call
    per wave (Swift's Falkon provider batches ready tasks).
    """

    def __init__(self, env: Environment, dispatcher: SimDispatcher) -> None:
        self.env = env
        self.dispatcher = dispatcher

    def submit_wave(self, specs: list[TaskSpec]) -> Generator:
        if not specs:
            return []
        records = yield from self.dispatcher.accept_tasks(specs)
        return [record.completion for record in records]


class GramProvider(ExecutionProvider):
    """One GRAM4+PBS job per task (the paper's slow baseline)."""

    def __init__(self, env: Environment, gateway: Gram4Gateway) -> None:
        self.env = env
        self.gateway = gateway

    def submit_wave(self, specs: list[TaskSpec]) -> Generator:
        events: list[Event] = []
        for spec in specs:
            events.append(
                self.env.process(
                    self.gateway.run_task(spec), name=f"gram-{spec.task_id}"
                )
            )
        return events
        yield  # pragma: no cover - makes this a generator


class ClusteredGramProvider(ExecutionProvider):
    """Swift-style task clustering over GRAM4+PBS (§5.1).

    Each wave is partitioned into at most ``clusters`` groups; each
    group runs as one GRAM4 job whose body executes the group's tasks
    back-to-back.  GRAM4's pre/post overheads are paid once per group
    instead of once per task — the source of the "more than four times"
    §5.1 speedup.
    """

    def __init__(
        self,
        env: Environment,
        gateway: Gram4Gateway,
        clusters: int = 8,
        batch_window: float = 0.0,
    ) -> None:
        if clusters <= 0:
            raise ValueError("clusters must be positive")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        self.env = env
        self.gateway = gateway
        self.clusters = clusters
        #: Seconds to accumulate ready tasks before forming groups.
        #: DAG workflows release tasks one at a time as dependencies
        #: complete; without a window, "clusters" degenerate to single
        #: tasks.  Swift's clustering batches over time, as here.
        self.batch_window = batch_window
        self._pending: list[tuple[TaskSpec, Event]] = []
        self._flush_scheduled = False

    def submit_wave(self, specs: list[TaskSpec]) -> Generator:
        if not specs:
            return []
        events = [self.env.event() for _ in specs]
        if self.batch_window <= 0:
            self._submit_groups(list(zip(specs, events)))
        else:
            self._pending.extend(zip(specs, events))
            if not self._flush_scheduled:
                self._flush_scheduled = True
                self.env.process(self._flush_later(), name="cluster-flush")
        return events
        yield  # pragma: no cover - makes this a generator

    def _flush_later(self) -> Generator:
        yield self.env.timeout(self.batch_window)
        pending, self._pending = self._pending, []
        self._flush_scheduled = False
        if pending:
            self._submit_groups(pending)

    def _submit_groups(self, items: list[tuple[TaskSpec, Event]]) -> None:
        group_count = min(self.clusters, len(items))
        groups: list[list[tuple[TaskSpec, Event]]] = [[] for _ in range(group_count)]
        for index, item in enumerate(items):
            groups[index % group_count].append(item)
        for group in groups:
            self.env.process(
                self._run_group(group), name=f"cluster-{group[0][0].task_id}"
            )

    def _run_group(self, group: list[tuple[TaskSpec, Event]]) -> Generator:
        """Submit one clustered job and resolve per-task events."""
        cfg = self.gateway.config
        total = sum(spec.duration for spec, _event in group)
        walltime = cfg.pre_exec_overhead + total + cfg.post_exec_overhead + 3600.0
        submit_time = self.env.now

        def body(env: Environment, job: LRMJob, machines) -> Generator:
            yield env.timeout(cfg.pre_exec_overhead)
            for spec, event in group:
                timeline = TaskTimeline(
                    submitted=submit_time, dispatched=env.now, started=env.now
                )
                if spec.duration > 0:
                    yield env.timeout(spec.duration)
                timeline.completed = env.now
                event.succeed(
                    TaskResult(
                        spec.task_id,
                        executor_id=machines[0].name if machines else "",
                        timeline=timeline,
                    )
                )
            yield env.timeout(cfg.post_exec_overhead)

        job = yield from self.gateway.allocate(
            nodes=1, walltime=walltime, body=body, name="clustered-group"
        )
        final = yield job.completed
        # Any tasks whose events never fired (job killed) fail now.
        for spec, event in group:
            if not event.triggered:
                event.succeed(
                    TaskResult(
                        spec.task_id,
                        return_code=1,
                        error=f"clustered job ended {final.value} before task ran",
                    )
                )
