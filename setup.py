"""Thin setup.py shim.

All project metadata lives in pyproject.toml; this file only exists so
that editable installs work on environments whose setuptools predates
PEP 660 editable-wheel support (no `wheel` package available offline):

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
