"""The testbed must match the paper's Table 1."""

from repro.cluster import PLATFORMS, paper_testbed
from repro.cluster.testbed import TG_ANL_FREE_NODES
from repro.sim import Environment


def test_table1_node_counts():
    assert PLATFORMS["TG_ANL_IA32"].nodes == 98
    assert PLATFORMS["TG_ANL_IA64"].nodes == 64
    assert PLATFORMS["TP_UC_x64"].nodes == 122
    assert PLATFORMS["UC_x64"].nodes == 1
    assert PLATFORMS["UC_IA32"].nodes == 1


def test_table1_processor_counts():
    # Dual-processor nodes throughout; UC_x64 has HT (4 hw threads).
    assert PLATFORMS["TG_ANL_IA32"].node.processors == 2
    assert PLATFORMS["TG_ANL_IA64"].node.processors == 2
    assert PLATFORMS["TP_UC_x64"].node.processors == 2
    assert PLATFORMS["UC_x64"].node.processors == 4
    assert PLATFORMS["UC_IA32"].node.processors == 1


def test_table1_memory_and_network():
    assert PLATFORMS["TG_ANL_IA32"].node.memory_gb == 4.0
    assert PLATFORMS["UC_x64"].node.memory_gb == 2.0
    assert PLATFORMS["UC_IA32"].node.memory_gb == 1.0
    assert PLATFORMS["TG_ANL_IA32"].node.network_mbps == 1000.0
    assert PLATFORMS["UC_x64"].node.network_mbps == 100.0


def test_paper_testbed_free_limit_totals_128():
    env = Environment()
    testbed = paper_testbed(env)
    free = testbed["TG_ANL_IA32"].free_count() + testbed["TG_ANL_IA64"].free_count()
    assert free == TG_ANL_FREE_NODES == 128


def test_paper_testbed_contains_all_platforms():
    env = Environment()
    assert set(paper_testbed(env)) == set(PLATFORMS)
