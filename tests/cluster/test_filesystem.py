"""Filesystem model tests against Figure 4's calibration points."""

import pytest

from repro.cluster import LocalDisk, SharedFileSystem, gpfs_model, local_disk_model
from repro.sim import Environment

MB = 10**6


def run_readers(env, fs, n_streams, nbytes, node_per_stream=False):
    """Run n concurrent readers; return elapsed time."""
    def reader(i):
        if node_per_stream:
            yield from fs.read(env, nbytes, node=f"node{i}")
        else:
            yield from fs.read(env, nbytes)

    for i in range(n_streams):
        env.process(reader(i))
    env.run()
    return env.now


def test_gpfs_aggregate_read_bandwidth():
    env = Environment()
    fs = gpfs_model(env)
    # 64 concurrent 10 MB reads: limited by aggregate 3067 Mb/s.
    elapsed = run_readers(env, fs, 64, 10 * MB)
    achieved_mbps = 64 * 10 * MB * 8 / 1e6 / elapsed
    assert achieved_mbps == pytest.approx(3067, rel=0.10)


def test_gpfs_single_reader_gets_one_server_share():
    env = Environment()
    fs = gpfs_model(env)
    elapsed = run_readers(env, fs, 1, 10 * MB)
    achieved_mbps = 10 * MB * 8 / 1e6 / elapsed
    assert achieved_mbps == pytest.approx(3067 / 8, rel=0.10)


def test_gpfs_write_op_ceiling_near_150_per_sec():
    env = Environment()
    fs = gpfs_model(env)

    def writer():
        yield from fs.write(env, 1)  # 1-byte write: pure op cost

    for _ in range(300):
        env.process(writer())
    env.run()
    rate = 300 / env.now
    assert rate == pytest.approx(150.0, rel=0.05)


def test_gpfs_read_ops_parallel_across_servers():
    env = Environment()
    fs = SharedFileSystem(env, read_op_latency=0.01, io_servers=8)
    for _ in range(80):
        env.process(fs.read(env, 0))
    env.run()
    # 80 ops, 8 at a time, 10 ms each -> ~0.1 s.
    assert env.now == pytest.approx(0.1, rel=0.05)
    assert fs.read_ops == 80


def test_local_disk_no_cross_node_contention():
    env = Environment()
    disk = local_disk_model(env)
    # 64 nodes each reading 10 MB concurrently: same time as one node.
    elapsed_many = run_readers(env, disk, 64, 10 * MB, node_per_stream=True)

    env2 = Environment()
    disk2 = local_disk_model(env2)
    elapsed_one = run_readers(env2, disk2, 1, 10 * MB, node_per_stream=True)
    assert elapsed_many == pytest.approx(elapsed_one, rel=1e-6)


def test_local_disk_same_node_serializes():
    env = Environment()
    disk = LocalDisk(env, read_bandwidth_mbps=800.0)

    def reader():
        yield from disk.read(env, 10 * MB, node="shared-node")

    env.process(reader())
    env.process(reader())
    env.run()
    single = 10 * MB * 8 / (800.0 * 1e6)
    assert env.now == pytest.approx(2 * single, rel=0.05)


def test_local_write_bandwidth():
    env = Environment()
    disk = local_disk_model(env)

    def writer():
        yield from disk.write(env, 100 * MB, node="n0")

    env.process(writer())
    env.run()
    achieved = 100 * MB * 8 / 1e6 / env.now
    assert achieved == pytest.approx(1368, rel=0.05)
    assert disk.bytes_written == 100 * MB


def test_gpfs_read_write_combined_rate_matches_fig4():
    # One task reads s bytes then writes s bytes; combined large-size
    # plateau (counting s once) should approach ~326 Mb/s aggregate.
    env = Environment()
    fs = gpfs_model(env)
    s = 50 * MB
    n = 16

    def task(i):
        yield from fs.read(env, s)
        yield from fs.write(env, s)

    for i in range(n):
        env.process(task(i))
    env.run()
    data_mbps = n * s * 8 / 1e6 / env.now
    assert data_mbps == pytest.approx(326, rel=0.15)


def test_filesystem_validation():
    env = Environment()
    with pytest.raises(ValueError):
        SharedFileSystem(env, read_bandwidth_mbps=0)
    with pytest.raises(ValueError):
        SharedFileSystem(env, io_servers=0)
    with pytest.raises(ValueError):
        SharedFileSystem(env, write_op_rate=0)
    with pytest.raises(ValueError):
        LocalDisk(env, read_bandwidth_mbps=-1)
    fs = SharedFileSystem(env)
    with pytest.raises(ValueError):
        next(fs.read(env, -1))
    with pytest.raises(ValueError):
        next(fs.write(env, -1))


def test_counters_accumulate():
    env = Environment()
    fs = gpfs_model(env)

    def task():
        yield from fs.read(env, 100)
        yield from fs.write(env, 50)

    env.process(task())
    env.run()
    assert fs.bytes_read == 100
    assert fs.bytes_written == 50
    assert fs.read_ops == 1
    assert fs.write_ops == 1
