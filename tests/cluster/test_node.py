"""Unit tests for machines and clusters."""

import pytest

from repro.cluster import Cluster, ClusterSpec, Machine, NodeSpec
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cluster(env):
    return Cluster(env, ClusterSpec(name="test", nodes=4, node=NodeSpec(processors=2)))


def test_nodespec_validation():
    with pytest.raises(ValueError):
        NodeSpec(processors=0)
    with pytest.raises(ValueError):
        NodeSpec(cpu_ghz=-1)


def test_clusterspec_total_processors():
    spec = ClusterSpec(name="c", nodes=10, node=NodeSpec(processors=2))
    assert spec.total_processors == 20
    with pytest.raises(ValueError):
        ClusterSpec(name="c", nodes=0, node=NodeSpec())


def test_machine_occupy_vacate():
    m = Machine("n0", NodeSpec(processors=2))
    assert m.free_processors == 2
    m.occupy()
    m.occupy()
    assert m.free_processors == 0
    with pytest.raises(RuntimeError):
        m.occupy()
    m.vacate(2)
    assert m.free_processors == 2
    with pytest.raises(RuntimeError):
        m.vacate()
    with pytest.raises(ValueError):
        m.occupy(0)


def test_cluster_allocate_release(cluster):
    machines = cluster.allocate(3, owner="job1")
    assert len(machines) == 3
    assert cluster.allocated_count() == 3
    assert cluster.free_count() == 1
    cluster.release(machines[:1])
    assert cluster.free_count() == 2
    cluster.release(machines[1:])
    assert cluster.free_count() == 4


def test_cluster_over_allocation_rejected(cluster):
    cluster.allocate(4, owner="big")
    with pytest.raises(RuntimeError):
        cluster.allocate(1, owner="late")


def test_cluster_double_release_rejected(cluster):
    machines = cluster.allocate(1, owner="j")
    cluster.release(machines)
    with pytest.raises(RuntimeError):
        cluster.release(machines)


def test_cluster_free_limit(env):
    spec = ClusterSpec(name="limited", nodes=10, node=NodeSpec())
    cluster = Cluster(env, spec, free_limit=3)
    assert cluster.free_count() == 3
    cluster.allocate(3, owner="j")
    assert cluster.free_count() == 0
    with pytest.raises(RuntimeError):
        cluster.allocate(1, owner="j2")


def test_cluster_free_limit_validation(env):
    spec = ClusterSpec(name="x", nodes=5, node=NodeSpec())
    with pytest.raises(ValueError):
        Cluster(env, spec, free_limit=6)
    with pytest.raises(ValueError):
        Cluster(env, spec, free_limit=-1)
