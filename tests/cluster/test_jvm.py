"""JVM GC model tests (Figure 8 substrate)."""

import pytest

from repro.cluster import JVMModel


def test_defaults_match_paper_heap():
    jvm = JVMModel()
    assert jvm.heap_bytes == pytest.approx(1.5 * 1024**3)


def test_occupancy_monotonic_and_capped():
    jvm = JVMModel()
    values = [jvm.occupancy(n) for n in (0, 10_000, 1_000_000, 10_000_000)]
    assert values == sorted(values)
    assert values[0] == 0.0
    assert values[-1] == 1.0


def test_occupancy_rejects_negative():
    with pytest.raises(ValueError):
        JVMModel().occupancy(-1)


def test_pause_grows_with_queue():
    jvm = JVMModel()
    assert jvm.pause_duration(1_500_000) > jvm.pause_duration(0)
    assert jvm.pause_duration(0) == pytest.approx(jvm.base_pause)


def test_should_collect_threshold():
    jvm = JVMModel(tasks_per_gc=100)
    assert not jvm.should_collect(99)
    assert jvm.should_collect(100)
    assert jvm.should_collect(150)


def test_heap_holds_paper_queue_depth():
    # The paper's queue reached 1.5 M tasks inside the 1.5 GB heap.
    jvm = JVMModel()
    assert jvm.max_queue_capacity() > 1_500_000


def test_gc_duty_cycle_yields_paper_average():
    """With the Figure 8 mid-run queue depth the model must average
    near 298 tasks/s when the raw (between-GC) rate is 487 tasks/s.

    The dispatcher emits two churn units per task (dispatch +
    completion legs), so ``tasks_per_gc`` units cover half as many
    tasks."""
    jvm = JVMModel()
    raw_rate = 487.0
    tasks_between_gc = jvm.tasks_per_gc / 2
    busy = tasks_between_gc / raw_rate
    # Time-weighted mean queue depth over the whole run (the queue
    # ramps 0 -> ~1.2 M and drains back; the 2 M-task bench measures
    # the resulting average directly).
    pause = jvm.pause_duration(750_000)
    average = tasks_between_gc / (busy + pause)
    assert average == pytest.approx(298.0, rel=0.07)


def test_validation():
    with pytest.raises(ValueError):
        JVMModel(heap_bytes=0)
    with pytest.raises(ValueError):
        JVMModel(tasks_per_gc=0)
    with pytest.raises(ValueError):
        JVMModel(base_pause=-1)
