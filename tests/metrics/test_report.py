"""Unit tests for the text-table renderer."""

import math

import pytest

from repro.metrics import Table, format_si


def test_format_si():
    assert format_si(2_000_000) == "2M"
    assert format_si(54_000) == "54K"
    assert format_si(487.0) == "487"
    assert format_si(0.45) == "0.45"
    assert format_si(1.5e9) == "1.5G"
    assert format_si(float("nan")) == "—"
    assert format_si(None) == "—"


def test_table_renders_aligned_columns():
    table = Table("Demo", ["system", "throughput"])
    table.add_row("Falkon", 487.0)
    table.add_row("PBS", 0.45)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "== Demo =="
    assert "system" in lines[1] and "throughput" in lines[1]
    assert "Falkon" in lines[3]
    # Columns align: 'throughput' starts at the same offset everywhere.
    offset = lines[1].index("throughput")
    assert lines[3][offset:].startswith("487")


def test_table_cell_formatting():
    table = Table("T", ["a", "b", "c"])
    table.add_row(None, float("nan"), 0.123456)
    row = table.render().splitlines()[-1]
    assert row.count("—") == 2
    assert "0.1235" in row


def test_table_validation():
    with pytest.raises(ValueError):
        Table("x", [])
    table = Table("x", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_table_print(capsys):
    table = Table("P", ["col"])
    table.add_row("val")
    table.print()
    out = capsys.readouterr().out
    assert "== P ==" in out and "val" in out
