"""Unit tests for the ASCII plotter."""

import pytest

from repro.metrics import AsciiPlot, Series


def test_series_validation():
    with pytest.raises(ValueError):
        Series("s", [1, 2], [1])
    with pytest.raises(ValueError):
        Series("s", [1], [1], glyph="ab")


def test_canvas_validation():
    with pytest.raises(ValueError):
        AsciiPlot("t", width=5)
    with pytest.raises(ValueError):
        AsciiPlot("t", height=2)


def test_empty_plot_rejected():
    with pytest.raises(ValueError):
        AsciiPlot("empty").render()


def test_basic_render_contains_points_and_legend():
    plot = AsciiPlot("Demo", width=40, height=10, x_label="n", y_label="rate")
    plot.add_series("up", [0, 1, 2, 3], [0, 10, 20, 30])
    text = plot.render()
    assert "== Demo ==" in text
    assert "* = up" in text
    assert "n vs rate" in text
    assert "30" in text and "0" in text  # axis labels


def test_multiple_series_get_distinct_glyphs():
    plot = AsciiPlot("multi")
    plot.add_series("a", [1], [1])
    plot.add_series("b", [2], [2])
    assert plot.series[0].glyph != plot.series[1].glyph
    text = plot.render()
    assert "* = a" in text and "o = b" in text


def test_log_axes():
    plot = AsciiPlot("loglog", log_x=True, log_y=True)
    plot.add_series("s", [1, 10, 100, 1000], [1, 10, 100, 1000])
    text = plot.render()
    assert "[log x, log y]" in text
    # Equal log-spacing: the points form a diagonal.
    rows = [line for line in text.splitlines() if "|" in line]
    cols = [row.index("*") for row in rows if "*" in row]
    assert len(cols) == 4
    # Rows render top (max y) first, so columns descend left-to-right.
    assert cols == sorted(cols, reverse=True)


def test_log_axis_rejects_nonpositive():
    plot = AsciiPlot("bad", log_y=True)
    plot.add_series("s", [1, 2], [0, 5])
    with pytest.raises(ValueError):
        plot.render()


def test_flat_series_does_not_crash():
    plot = AsciiPlot("flat")
    plot.add_series("c", [1, 2, 3], [5, 5, 5])
    assert "c" in plot.render()


def test_large_values_formatted():
    plot = AsciiPlot("big")
    plot.add_series("s", [0, 1], [0.001, 2_000_000])
    text = plot.render()
    assert "e" in text.lower()  # scientific notation somewhere
