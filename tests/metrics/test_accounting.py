"""Metric definitions must reproduce the paper's quoted data points."""

import pytest

from repro.metrics import (
    derived_efficiency,
    dispatch_limited_efficiency,
    efficiency,
    execution_efficiency,
    resource_utilization,
    speedup,
)


def test_speedup_and_efficiency_definitions():
    # 64 tasks x 64s on 256 executors, paper: speedup 255.5.
    t1 = 16384 * 64.0  # arbitrary consistent units
    tp = t1 / 255.5
    assert speedup(t1, tp) == pytest.approx(255.5)
    assert efficiency(t1, tp, 256) == pytest.approx(255.5 / 256)


def test_validation():
    with pytest.raises(ValueError):
        speedup(0, 1)
    with pytest.raises(ValueError):
        efficiency(1, 1, 0)
    with pytest.raises(ValueError):
        derived_efficiency(0, 1, 1)
    with pytest.raises(ValueError):
        derived_efficiency(1, -1, 1)
    with pytest.raises(ValueError):
        dispatch_limited_efficiency(1, 0, 1)
    with pytest.raises(ValueError):
        resource_utilization(-1, 0)
    with pytest.raises(ValueError):
        execution_efficiency(0, 1)


def test_condor_693_derived_curve_matches_fig7():
    """§4.4: Condor v6.9.3 (0.0909 s/task) reaches 90/95/99 % efficiency
    at task lengths of 50/100/1000 s on 64 processors."""
    assert derived_efficiency(50, 0.0909, 64) == pytest.approx(0.90, abs=0.01)
    assert derived_efficiency(100, 0.0909, 64) == pytest.approx(0.95, abs=0.01)
    assert derived_efficiency(1000, 0.0909, 64) == pytest.approx(0.99, abs=0.005)


def test_pbs_derived_curve_matches_fig7():
    """§4.4: PBS (~0.45 tasks/s) needs ~1200 s tasks for 90 % efficiency
    and reaches 99 % only around 16000 s."""
    e_1sec = dispatch_limited_efficiency(1, 0.45, 64)
    assert e_1sec < 0.01  # "less than 1% for 1 sec tasks"
    assert dispatch_limited_efficiency(1280, 0.45, 64) == pytest.approx(0.90, abs=0.01)
    assert dispatch_limited_efficiency(16000, 0.45, 64) == pytest.approx(0.99, abs=0.005)


def test_falkon_efficiency_high_for_short_tasks():
    """§4.4: Falkon achieves ~95 % efficiency with 1 s tasks on 64 procs."""
    # Falkon's dispatch is parallel across executors; the serialized
    # component is the dispatcher CPU at 487 tasks/s.
    e = dispatch_limited_efficiency(1, 487, 64)
    assert e > 0.85


def test_resource_utilization_table4_points():
    # GRAM4+PBS: used 17820, wasted 41040 -> 30%.
    assert resource_utilization(17820, 41040) == pytest.approx(0.30, abs=0.005)
    # Falkon-15: wasted 2032 -> 89.8%.
    assert resource_utilization(17820, 2032) == pytest.approx(0.90, abs=0.01)
    # Falkon-inf: wasted 22940 -> 44%.
    assert resource_utilization(17820, 22940) == pytest.approx(0.44, abs=0.01)
    assert resource_utilization(0, 0) == 0.0


def test_execution_efficiency_table4_points():
    assert execution_efficiency(1260, 4904) == pytest.approx(0.26, abs=0.01)
    assert execution_efficiency(1260, 1754) == pytest.approx(0.72, abs=0.01)
    assert execution_efficiency(1260, 1276) == pytest.approx(0.99, abs=0.01)
