"""Unit tests for the shared task model."""

import math

import pytest

from repro.types import (
    Bundle,
    DataLocation,
    DataRef,
    TaskResult,
    TaskSpec,
    TaskState,
    TaskTimeline,
    new_task_id,
    reset_task_ids,
)


def test_new_task_id_unique_and_prefixed():
    a, b = new_task_id(), new_task_id("job")
    assert a != b
    assert b.startswith("job-")


def test_reset_task_ids():
    reset_task_ids()
    assert new_task_id() == "task-000001"


def test_task_state_terminal():
    assert TaskState.COMPLETED.terminal
    assert TaskState.FAILED.terminal
    assert TaskState.CANCELED.terminal
    assert not TaskState.QUEUED.terminal
    assert not TaskState.DISPATCHED.terminal


def test_dataref_validation():
    DataRef("f", 0)
    with pytest.raises(ValueError):
        DataRef("f", -1)


def test_taskspec_sleep_factory():
    t = TaskSpec.sleep(480.0)
    assert t.command == "sleep"
    assert t.args == ("480.0",)
    assert t.duration == 480.0


def test_taskspec_validation():
    with pytest.raises(ValueError):
        TaskSpec(task_id="")
    with pytest.raises(ValueError):
        TaskSpec(task_id="x", duration=-1)
    with pytest.raises(ValueError):
        TaskSpec(task_id="x", duration=math.inf)


def test_taskspec_with_id_copies():
    t = TaskSpec.sleep(1.0, task_id="a")
    t2 = t.with_id("b")
    assert t2.task_id == "b" and t.task_id == "a"
    assert t2.duration == t.duration


def test_taskspec_data_totals():
    t = TaskSpec(
        task_id="x",
        reads=(DataRef("in1", 100), DataRef("in2", 50, DataLocation.LOCAL)),
        writes=(DataRef("out", 25),),
    )
    assert t.total_read_bytes == 150
    assert t.total_write_bytes == 25


def test_timeline_derived_quantities():
    tl = TaskTimeline(submitted=10.0, dispatched=15.0, completed=18.0)
    assert tl.queue_time == 5.0
    assert tl.execution_time == 3.0
    assert tl.total_time == 8.0


def test_taskresult_ok():
    assert TaskResult("t").ok
    assert not TaskResult("t", return_code=1).ok
    assert not TaskResult("t", error="lost").ok


def test_bundle_rejects_empty_and_duplicates():
    t = TaskSpec.sleep(0, task_id="a")
    with pytest.raises(ValueError):
        Bundle(())
    with pytest.raises(ValueError):
        Bundle((t, t))


def test_bundle_split_partitions_in_order():
    tasks = [TaskSpec.sleep(0, task_id=f"t{i}") for i in range(7)]
    bundles = Bundle.split(tasks, 3)
    assert [len(b) for b in bundles] == [3, 3, 1]
    flat = [t.task_id for b in bundles for t in b]
    assert flat == [f"t{i}" for i in range(7)]


def test_bundle_split_validates_size():
    with pytest.raises(ValueError):
        Bundle.split([TaskSpec.sleep(0, task_id="a")], 0)
