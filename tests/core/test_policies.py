"""Unit tests for acquisition and release policies (§3.1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import AcquisitionPolicyName, ReleasePolicyName
from repro.core.policies import (
    Additive,
    AllAtOnce,
    Available,
    CentralizedQueue,
    DistributedIdle,
    Exponential,
    NeverRelease,
    OneAtATime,
    make_acquisition_policy,
    make_release_policy,
)


def test_all_at_once_single_request():
    assert AllAtOnce().plan(32) == [32]
    assert AllAtOnce().plan(0) == []


def test_one_at_a_time_n_requests():
    assert OneAtATime().plan(5) == [1, 1, 1, 1, 1]
    assert OneAtATime().plan(0) == []


def test_additive_arithmetic_growth():
    assert Additive(step=1).plan(10) == [1, 2, 3, 4]
    assert Additive(step=2).plan(12) == [2, 4, 6]
    # last request truncated to the remaining need
    assert Additive(step=3).plan(7) == [3, 4]


def test_exponential_growth():
    assert Exponential().plan(15) == [1, 2, 4, 8]
    assert Exponential().plan(10) == [1, 2, 4, 3]
    assert Exponential(base=3).plan(13) == [1, 3, 9]


def test_available_policy():
    assert Available().plan(10, available=4) == [4]
    assert Available().plan(10, available=100) == [10]
    assert Available().plan(10, available=0) == []
    assert Available().plan(10, available=None) == [10]


def test_policy_parameter_validation():
    with pytest.raises(ValueError):
        Additive(step=0)
    with pytest.raises(ValueError):
        Exponential(base=1)
    with pytest.raises(ValueError):
        AllAtOnce().plan(-1)


@pytest.mark.parametrize("name", list(AcquisitionPolicyName))
def test_factory_builds_every_policy(name):
    policy = make_acquisition_policy(name)
    assert policy.name == name.value


@pytest.mark.parametrize("name", list(AcquisitionPolicyName))
@given(needed=st.integers(0, 500), available=st.none() | st.integers(0, 500))
def test_plans_cover_need_without_overshoot(name, needed, available):
    """Every policy's plan sums to exactly the need (or less, only for
    AVAILABLE when the LRM reports fewer free nodes)."""
    policy = make_acquisition_policy(name)
    plan = policy.plan(needed, available=available)
    assert all(size >= 1 for size in plan)
    total = sum(plan)
    if name is AcquisitionPolicyName.AVAILABLE and available is not None:
        assert total == min(needed, available)
    else:
        assert total == needed


def test_distributed_idle_release():
    policy = DistributedIdle(15.0)
    assert policy.executor_idle_timeout() == 15.0
    assert not policy.dispatcher_should_release(0, 10)
    with pytest.raises(ValueError):
        DistributedIdle(0)


def test_centralized_queue_release():
    policy = CentralizedQueue(threshold=2)
    assert policy.executor_idle_timeout() == math.inf
    assert policy.dispatcher_should_release(queued_tasks=1, idle_executors=3)
    assert not policy.dispatcher_should_release(queued_tasks=5, idle_executors=3)
    assert not policy.dispatcher_should_release(queued_tasks=0, idle_executors=0)
    with pytest.raises(ValueError):
        CentralizedQueue(-1)


def test_never_release():
    policy = NeverRelease()
    assert math.isinf(policy.executor_idle_timeout())
    assert not policy.dispatcher_should_release(0, 99)


def test_release_factory():
    assert isinstance(
        make_release_policy(ReleasePolicyName.DISTRIBUTED_IDLE, idle_time=5), DistributedIdle
    )
    assert isinstance(
        make_release_policy(ReleasePolicyName.CENTRALIZED_QUEUE, threshold=1), CentralizedQueue
    )
    assert isinstance(make_release_policy(ReleasePolicyName.NEVER), NeverRelease)
