"""Chaos tests: the replay policy under randomized failure schedules.

Property: whatever the crash schedule and task mix, every task reaches
a terminal state exactly once, no executor double-counts, and the
busy/registered gauges return to a consistent state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FalkonConfig, FalkonSystem
from repro.types import TaskSpec, TaskState


@given(
    n_tasks=st.integers(10, 60),
    n_executors=st.integers(2, 8),
    crash_times=st.lists(st.floats(0.5, 30.0), min_size=0, max_size=3),
    durations=st.floats(0.0, 3.0),
    seed=st.integers(0, 100),
)
@settings(max_examples=25, deadline=None)
def test_all_tasks_terminal_under_crashes(n_tasks, n_executors, crash_times, durations, seed):
    system = FalkonSystem(FalkonConfig.paper_defaults(max_retries=5), seed=seed)
    executors = system.static_pool(n_executors)
    env = system.env

    # Crash schedule: each listed time kills one distinct executor
    # (never the last one alive, so the workload can finish).
    def saboteur(index, at):
        yield env.timeout(at)
        alive = [e for e in executors if e.is_alive]
        if len(alive) > 1:
            alive[index % len(alive)].crash()

    for i, at in enumerate(sorted(crash_times)):
        env.process(saboteur(i, at))

    tasks = [TaskSpec.sleep(durations, task_id=f"ch{i:04d}") for i in range(n_tasks)]
    result = system.run_workload(tasks)

    # Every task reached exactly one terminal state.
    assert len(result.records) == n_tasks
    assert all(r.state.terminal for r in result.records)
    assert result.completed + result.failed == n_tasks
    # Nothing left queued or in flight.
    assert system.dispatcher.queued_tasks == 0
    assert system.dispatcher.busy_executors == 0
    # Gauge consistency: registered equals alive executors.
    alive = sum(1 for e in executors if e.is_alive)
    assert system.dispatcher.registered_executors == alive
    # With generous retries and survivors, everything completes.
    assert result.completed == n_tasks


@given(
    failure_rate=st.floats(0.0, 0.9),
    max_retries=st.integers(0, 4),
    seed=st.integers(0, 50),
)
@settings(max_examples=25, deadline=None)
def test_retry_accounting_consistent(failure_rate, max_retries, seed):
    system = FalkonSystem(
        FalkonConfig.paper_defaults(max_retries=max_retries), seed=seed
    )
    system.static_pool(4, failure_rate=failure_rate)
    n = 40
    result = system.run_workload(
        [TaskSpec.sleep(0, task_id=f"rt{i:03d}") for i in range(n)]
    )
    assert result.completed + result.failed == n
    for record in result.records:
        # Attempts never exceed the policy bound.
        assert 1 <= record.attempts <= max_retries + 1
        # Failed tasks exhausted every permitted attempt.
        if record.state is TaskState.FAILED:
            assert record.attempts == max_retries + 1


def test_mass_extinction_then_recovery():
    """Kill every executor mid-flight; later arrivals of a fresh pool
    must drain the replayed queue."""
    system = FalkonSystem(FalkonConfig.paper_defaults(max_retries=10))
    first_wave = system.static_pool(4)
    env = system.env

    def extinction():
        yield env.timeout(2.0)
        for executor in first_wave:
            executor.crash()
        yield env.timeout(5.0)
        system.static_pool(4)

    env.process(extinction())
    tasks = [TaskSpec.sleep(1.0, task_id=f"mx{i:03d}") for i in range(40)]
    result = system.run_workload(tasks)
    assert result.completed == 40
    assert system.dispatcher.retries >= 1
