"""Dispatcher + executor integration tests (simulation plane)."""

import pytest

from repro import FalkonConfig, FalkonSystem, SecurityMode
from repro.types import TaskSpec, TaskState


def sleep_tasks(n, seconds=0.0):
    return [TaskSpec.sleep(seconds, task_id=f"t{i:05d}") for i in range(n)]


def test_single_executor_rate_near_28():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(1)
    result = system.run_workload(sleep_tasks(200))
    assert result.throughput == pytest.approx(28.0, rel=0.05)


def test_many_executors_saturate_near_487():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(256)
    result = system.run_workload(sleep_tasks(5000))
    assert result.throughput == pytest.approx(487.0, rel=0.05)


def test_security_lowers_throughput_to_204():
    system = FalkonSystem(
        FalkonConfig.paper_defaults(security=SecurityMode.GSI_SECURE_CONVERSATION)
    )
    system.static_pool(256)
    result = system.run_workload(sleep_tasks(3000))
    assert result.throughput == pytest.approx(204.0, rel=0.05)


def test_all_tasks_complete_exactly_once():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(16)
    result = system.run_workload(sleep_tasks(500))
    assert result.completed == 500
    assert result.failed == 0
    ids = [r.task_id for r in result.results]
    assert len(set(ids)) == 500
    assert all(r.attempts == 1 for r in result.results)


def test_task_execution_time_within_100ms_of_ideal():
    """§4.6: Falkon execution time is 'within 100 ms of ideal'."""
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(8)
    result = system.run_workload(sleep_tasks(64, seconds=10.0))
    assert result.mean_execution_time() == pytest.approx(10.0, abs=0.1)


def test_timeline_ordering_invariant():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(4)
    result = system.run_workload(sleep_tasks(50, seconds=1.0))
    for record in result.records:
        tl = record.timeline
        assert tl.submitted <= tl.dispatched <= tl.started <= tl.completed


def test_executor_never_runs_two_tasks_at_once():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    executors = system.static_pool(3)
    result = system.run_workload(sleep_tasks(60, seconds=2.0))
    # Group records per executor and check no overlap.
    by_executor = {}
    for record in result.records:
        by_executor.setdefault(record.executor_id, []).append(record.timeline)
    assert len(by_executor) <= 3
    for timelines in by_executor.values():
        timelines.sort(key=lambda tl: tl.dispatched)
        for a, b in zip(timelines, timelines[1:]):
            assert a.completed <= b.dispatched + 1e-9


def test_piggybacking_off_costs_more_cpu():
    fast = FalkonSystem(FalkonConfig.paper_defaults(piggyback=True))
    fast.static_pool(256)
    r_fast = fast.run_workload(sleep_tasks(3000))
    slow = FalkonSystem(FalkonConfig.paper_defaults(piggyback=False))
    slow.static_pool(256)
    r_slow = slow.run_workload(sleep_tasks(3000))
    assert r_slow.throughput < r_fast.throughput
    # 2.053ms + 2ms extra per task -> ~247 tasks/s.
    assert r_slow.throughput == pytest.approx(1.0 / (1 / 487 + 1 / 500), rel=0.06)


def test_queue_time_includes_wait():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(1)
    result = system.run_workload(sleep_tasks(10, seconds=1.0))
    # With one executor the 10th task waits ~9 task durations.
    queue_times = sorted(r.timeline.queue_time for r in result.records)
    assert queue_times[0] < 1.0
    assert queue_times[-1] > 8.0


def test_failure_injection_retries_up_to_limit():
    system = FalkonSystem(FalkonConfig.paper_defaults(max_retries=3), seed=42)
    system.static_pool(4, failure_rate=0.3)
    result = system.run_workload(sleep_tasks(200))
    assert result.completed + result.failed == 200
    # With 30% failure and 3 retries, nearly everything succeeds.
    assert result.completed > 190
    assert system.dispatcher.retries > 0
    retried = [r for r in result.results if r.attempts > 1]
    assert retried


def test_zero_retries_fails_fast():
    system = FalkonSystem(FalkonConfig.paper_defaults(max_retries=0), seed=7)
    system.static_pool(4, failure_rate=1.0)
    result = system.run_workload(sleep_tasks(20))
    assert result.failed == 20
    assert all(r.attempts == 1 for r in result.results)


def test_executor_crash_replays_inflight_task():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    executors = system.static_pool(2)
    env = system.env

    def saboteur():
        yield env.timeout(5.0)
        executors[0].crash()

    env.process(saboteur())
    result = system.run_workload(sleep_tasks(20, seconds=2.0))
    assert result.completed == 20
    # The crashed executor's in-flight task ran twice.
    assert any(r.attempts > 1 for r in result.results)
    assert system.dispatcher.registered_executors == 1


def test_crash_while_idle_is_clean():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    executors = system.static_pool(3)
    env = system.env
    result = system.run_workload(sleep_tasks(5))
    executors[0].crash()
    env.run(until=env.now + 1.0)
    assert system.dispatcher.registered_executors == 2
    # Remaining executors still serve work.
    result2 = system.run_workload(sleep_tasks(5))
    assert result2.completed == 5


def test_replay_timeout_redispatches():
    system = FalkonSystem(FalkonConfig.paper_defaults(replay_timeout=5.0, max_retries=2))
    executors = system.static_pool(2)
    env = system.env

    # Freeze one executor mid-task by crashing it without dispatcher
    # notification: monkeypatch its retire to skip executor_lost.
    def silent_crash():
        yield env.timeout(1.0)
        victim = executors[0]
        victim._proc.defused = True
        victim.dispatcher = _MuteDispatcher(system.dispatcher)
        victim._proc.interrupt("crash")

    class _MuteDispatcher:
        def __init__(self, inner):
            self._inner = inner

        def __getattr__(self, name):
            if name == "executor_lost":
                return lambda *a, **k: None
            return getattr(self._inner, name)

    env.process(silent_crash())
    result = system.run_workload(sleep_tasks(10, seconds=3.0))
    assert result.completed == 10
    assert any(r.attempts > 1 for r in result.results)


def test_completion_milestone_fires_in_order():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(4)
    env = system.env
    hits = []

    def watcher():
        m1 = system.dispatcher.completion_milestone(10)
        yield m1
        hits.append(("m10", system.dispatcher.tasks_completed))
        m2 = system.dispatcher.completion_milestone(50)
        yield m2
        hits.append(("m50", system.dispatcher.tasks_completed))

    env.process(watcher())
    system.run_workload(sleep_tasks(50))
    env.run()  # drain the watcher's own wakeup
    assert hits[0][0] == "m10" and hits[0][1] >= 10
    assert hits[1][0] == "m50" and hits[1][1] >= 50


def test_milestone_already_met_fires_immediately():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(2)
    system.run_workload(sleep_tasks(5))
    event = system.dispatcher.completion_milestone(3)
    assert event.triggered


def test_accept_tasks_validates_empty():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    with pytest.raises(ValueError):
        next(system.dispatcher.accept_tasks([]))


def test_records_track_states():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(2)
    result = system.run_workload(sleep_tasks(10))
    assert all(r.state is TaskState.COMPLETED for r in result.records)


def test_gauges_return_to_zero():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(8)
    system.run_workload(sleep_tasks(100, seconds=0.5))
    assert system.dispatcher.queued_tasks == 0
    assert system.dispatcher.busy_executors == 0
    assert system.dispatcher.registered_executors == 8
