"""Tests for the factory/instance pattern (§3.2, simulation plane)."""

import pytest

from repro import FalkonConfig, FalkonSystem
from repro.core import FalkonService
from repro.errors import DispatchError
from repro.types import TaskSpec


def make():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(2)
    service = FalkonService(system.env, system.dispatcher)
    return system, service


def tasks(n, prefix, seconds=0.0):
    return [TaskSpec.sleep(seconds, task_id=f"{prefix}{i:03d}") for i in range(n)]


def test_instances_get_unique_eprs():
    _system, service = make()
    a, b = service.create_instance(), service.create_instance()
    assert a.epr != b.epr
    assert service.active_instances == 2
    assert service.instance(a.epr) is a


def test_unknown_epr_rejected():
    _system, service = make()
    with pytest.raises(DispatchError):
        service.instance("falkon-epr-9999")


def test_instances_share_executors_but_separate_tasks():
    system, service = make()
    env = system.env
    a, b = service.create_instance(), service.create_instance()

    def driver():
        ra = yield from a.submit(tasks(5, "ia"))
        rb = yield from b.submit(tasks(7, "ib"))
        yield env.all_of([r.completion for r in ra + rb])

    proc = env.process(driver())
    env.run(until=proc)
    assert a.task_count == 5
    assert b.task_count == 7
    assert len(a.results()) == 5
    assert len(b.results()) == 7
    assert {r.task_id for r in a.results()}.isdisjoint(
        r.task_id for r in b.results()
    )


def test_progress_counts_by_state():
    system, service = make()
    env = system.env
    instance = service.create_instance()

    def driver():
        records = yield from instance.submit(tasks(4, "pg", seconds=5.0))
        yield env.all_of([r.completion for r in records])

    proc = env.process(driver())
    env.run(until=1.0)
    mid = instance.progress()
    assert mid["queued"] + mid["dispatched"] + mid["completed"] == 4
    env.run(until=proc)
    assert instance.progress()["completed"] == 4


def test_destroy_withdraws_queued_tasks():
    system, service = make()
    env = system.env
    instance = service.create_instance()

    def driver():
        # 10 long tasks on 2 executors: 8 stay queued for a while.
        yield from instance.submit(tasks(10, "dw", seconds=50.0))

    proc = env.process(driver())
    env.run(until=proc)
    env.run(until=env.now + 1.0)
    cancelled = instance.destroy()
    assert cancelled == 8
    assert instance.destroyed
    assert service.active_instances == 0
    # The two in-flight tasks still finish on their executors.
    env.run()
    done = instance.progress()
    assert done["completed"] == 2
    assert done["canceled"] == 8
    assert system.dispatcher.queued_tasks == 0


def test_destroyed_instance_rejects_submission():
    system, service = make()
    instance = service.create_instance()
    instance.destroy()
    with pytest.raises(DispatchError):
        next(instance.submit(tasks(1, "dead")))
    assert instance.destroy() == 0  # idempotent


def test_submit_and_wait_via_instance():
    system, service = make()
    env = system.env
    instance = service.create_instance()
    proc = env.process(instance.submit_and_wait(tasks(6, "sw")))
    results = env.run(until=proc)
    assert len(results) == 6 and all(r.ok for r in results)
