"""Provisioner tests: dynamic acquisition, release policies, leases."""

import math

import pytest

from repro import AcquisitionPolicyName, FalkonConfig, FalkonSystem, ReleasePolicyName
from repro.types import TaskSpec


def sleep_tasks(n, seconds):
    return [TaskSpec.sleep(seconds, task_id=f"p{i:05d}") for i in range(n)]


def make_system(idle=60.0, max_executors=8, acquisition=AcquisitionPolicyName.ALL_AT_ONCE,
                **overrides):
    cfg = FalkonConfig.falkon_idle(idle, max_executors=max_executors)
    cfg.acquisition_policy = acquisition
    cfg.executors_per_node = 1
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return FalkonSystem(cfg.validate(), cluster_nodes=32, processors_per_node=1)


def test_all_at_once_uses_single_allocation():
    system = make_system()
    result = system.run_workload(sleep_tasks(16, 30.0), bundle_size=16)
    assert result.completed == 16
    assert system.provisioner.stats.allocations_requested == 1
    assert system.provisioner.stats.executors_started == 8


def test_one_at_a_time_uses_many_allocations():
    system = make_system(acquisition=AcquisitionPolicyName.ONE_AT_A_TIME)
    result = system.run_workload(sleep_tasks(16, 30.0), bundle_size=16)
    assert result.completed == 16
    assert system.provisioner.stats.allocations_requested == 8


def test_exponential_allocations():
    system = make_system(acquisition=AcquisitionPolicyName.EXPONENTIAL)
    result = system.run_workload(sleep_tasks(16, 30.0), bundle_size=16)
    assert result.completed == 16
    # 8 executors as 1+2+4+1 -> 4 requests.
    assert system.provisioner.stats.allocations_requested == 4


def test_idle_release_returns_machines():
    system = make_system(idle=15.0)
    system.run_workload(sleep_tasks(8, 10.0), bundle_size=8)
    env = system.env
    env.run(until=env.now + 120.0)
    assert system.dispatcher.registered_executors == 0
    assert system.cluster.free_count() == 32
    assert system.provisioner.stats.executors_released == system.provisioner.stats.executors_started


def test_longer_idle_keeps_executors_for_next_burst():
    system = make_system(idle=300.0)
    r1 = system.run_workload(sleep_tasks(8, 5.0), bundle_size=8)
    allocations_after_first = system.provisioner.stats.allocations_requested
    # Second burst arrives 60s later: executors still registered.
    system.env.run(until=system.env.now + 60.0)
    assert system.dispatcher.registered_executors > 0
    r2 = system.run_workload(sleep_tasks(8, 5.0), bundle_size=8)
    assert system.provisioner.stats.allocations_requested == allocations_after_first
    # Without the allocation wait, the second burst is much faster.
    assert r2.makespan < r1.makespan


def test_never_release_prewarm_excludes_alloc_time():
    cfg = FalkonConfig.falkon_idle(math.inf, max_executors=8)
    cfg.executors_per_node = 1
    system = FalkonSystem(cfg.validate(), cluster_nodes=32, processors_per_node=1)
    result = system.run_workload(sleep_tasks(8, 10.0), bundle_size=8, prewarm=True)
    # Executors were up before submission: near-zero queue time.
    assert result.mean_queue_time() < 1.0
    assert result.makespan == pytest.approx(10.0, abs=1.0)
    # Prewarmed pool stays up.
    system.env.run(until=system.env.now + 300.0)
    assert system.dispatcher.registered_executors == 8


def test_centralized_release_policy_drains_idle_executors():
    cfg = FalkonConfig(
        release_policy=ReleasePolicyName.CENTRALIZED_QUEUE,
        centralized_queue_threshold=0,
        max_executors=4,
        executors_per_node=1,
        provisioner_poll_interval=1.0,
    ).validate()
    system = FalkonSystem(cfg, cluster_nodes=8, processors_per_node=1)
    system.run_workload(sleep_tasks(4, 5.0), bundle_size=4)
    # One release per poll: all four drain within a few polls.
    system.env.run(until=system.env.now + 30.0)
    assert system.dispatcher.registered_executors == 0
    assert system.cluster.free_count() == 8


def test_max_executors_bounds_pool():
    system = make_system(max_executors=4)
    system.run_workload(sleep_tasks(40, 5.0), bundle_size=40)
    assert system.provisioner.stats.executors_started <= 4


def test_allocation_lease_expiry_kills_executors():
    system = make_system(idle=10_000.0, allocation_lease=60.0)
    result = system.run_workload(sleep_tasks(8, 5.0), bundle_size=8)
    assert result.completed == 8
    system.env.run(until=system.env.now + 300.0)
    # Idle time never fires (10000s) but the lease does.
    assert system.dispatcher.registered_executors == 0
    assert system.cluster.free_count() == 32


def test_executors_per_node_two():
    cfg = FalkonConfig.falkon_idle(60.0, max_executors=8)
    cfg.executors_per_node = 2
    system = FalkonSystem(cfg.validate(), cluster_nodes=16, processors_per_node=2)
    result = system.run_workload(sleep_tasks(8, 10.0), bundle_size=8)
    assert result.completed == 8
    # 8 executors on 4 nodes.
    assert system.provisioner.stats.executors_started == 8
    assert system.cluster.allocated_count() <= 4


def test_provisioner_stop_halts_acquisition():
    system = make_system()
    system.provisioner.stop()
    records = system.dispatcher.accept_tasks_now(sleep_tasks(4, 1.0))
    system.env.run(until=200.0)
    # No executors ever appear; tasks stay queued.
    assert system.dispatcher.registered_executors == 0
    assert system.dispatcher.queued_tasks == 4
