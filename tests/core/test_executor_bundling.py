"""Dispatcher→executor bundling tests (§3.4).

The paper uses client→dispatcher bundling but not dispatcher→executor
bundling because its tasks lack runtime estimates; ours can carry them
(``TaskSpec.runtime_estimate``), activating the feature.
"""

import dataclasses

import pytest

from repro import FalkonConfig, FalkonSystem
from repro.types import TaskSpec


def estimated_tasks(n, seconds, prefix="eb"):
    return [
        dataclasses.replace(
            TaskSpec.sleep(seconds, task_id=f"{prefix}{i:04d}"),
            runtime_estimate=seconds,
        )
        for i in range(n)
    ]


def build(executor_bundling, n_executors=1):
    system = FalkonSystem(
        FalkonConfig.paper_defaults(executor_bundling=executor_bundling)
    )
    system.static_pool(n_executors)
    return system


def test_bundling_improves_short_task_throughput():
    base = build(False).run_workload(estimated_tasks(300, 0.0))
    bundled = build(True).run_workload(estimated_tasks(300, 0.0))
    assert bundled.completed == base.completed == 300
    # Followers skip most of the per-task exchange: large gain.
    assert bundled.throughput > 1.5 * base.throughput


def test_bundling_requires_estimates():
    system = build(True)
    # No runtime estimates -> never bundled -> same behaviour as off.
    plain = [TaskSpec.sleep(0, task_id=f"ne{i:03d}") for i in range(100)]
    result = system.run_workload(plain)
    reference = build(False).run_workload(
        [TaskSpec.sleep(0, task_id=f"nf{i:03d}") for i in range(100)]
    )
    assert result.throughput == pytest.approx(reference.throughput, rel=0.05)


def test_bundle_respects_estimate_cap():
    # Estimates above the 60 s bundle budget are never bundled, so the
    # makespan with 2 executors stays the fair 2-way split.
    system = build(True, n_executors=2)
    tasks = [
        dataclasses.replace(
            TaskSpec.sleep(10.0, task_id=f"cap{i}"), runtime_estimate=100.0
        )
        for i in range(4)
    ]
    result = system.run_workload(tasks)
    # 4 x 10 s tasks over 2 executors: ~20 s if not over-bundled.
    assert result.makespan == pytest.approx(20.0, abs=2.0)


def test_long_estimates_do_not_starve_parallelism():
    # With a 60s budget and 30s tasks, at most 2 tasks bundle; the rest
    # spread across executors instead of piling onto one.
    system = build(True, n_executors=4)
    result = system.run_workload(estimated_tasks(8, 30.0, prefix="par"))
    assert result.makespan == pytest.approx(60.0, abs=5.0)


def test_all_complete_exactly_once_with_bundling():
    system = build(True, n_executors=3)
    result = system.run_workload(estimated_tasks(200, 0.01))
    assert result.completed == 200
    assert len({r.task_id for r in result.results}) == 200
    assert all(r.attempts == 1 for r in result.results)


def test_crash_requeues_claimed_bundle():
    system = build(True, n_executors=2)
    executors = system._static_executors
    env = system.env

    def saboteur():
        yield env.timeout(0.5)
        executors[0].crash()

    env.process(saboteur())
    result = system.run_workload(estimated_tasks(50, 0.2, prefix="cr"))
    # Nothing lost: the crashed executor's claimed-but-unstarted bundle
    # followers were requeued.
    assert result.completed == 50
