"""Unit tests for FalkonSystem, WorkloadResult, SimClient and staging."""

import math

import pytest

from repro import FalkonConfig, FalkonSystem
from repro.cluster.filesystem import LocalDisk, SharedFileSystem
from repro.core.client import SimClient
from repro.core.dispatcher import SimDispatcher
from repro.core.staging import StagingModel
from repro.core.system import WorkloadResult
from repro.sim import Environment
from repro.types import DataLocation, DataRef, TaskSpec


def sleep_tasks(n, seconds=0.0, prefix="sc"):
    return [TaskSpec.sleep(seconds, task_id=f"{prefix}{i:04d}") for i in range(n)]


# ---------------------------------------------------------------- system
def test_run_workload_rejects_empty():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    with pytest.raises(ValueError):
        system.run_workload([])


def test_static_pool_rejects_nonpositive():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    with pytest.raises(ValueError):
        system.static_pool(0)


def test_static_pool_spreads_over_nodes():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    executors = system.static_pool(8, executors_per_machine=2)
    nodes = {e.node for e in executors}
    assert len(nodes) == 4


def test_consecutive_workloads_accumulate():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(4)
    r1 = system.run_workload(sleep_tasks(10, prefix="a"))
    r2 = system.run_workload(sleep_tasks(10, prefix="b"))
    assert r1.completed == r2.completed == 10
    assert system.dispatcher.tasks_completed == 20
    # Second run's timeline starts after the first.
    assert r2.started_at >= r1.finished_at


def test_workload_result_metrics():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(2)
    result = system.run_workload(sleep_tasks(20, seconds=1.0))
    assert result.makespan > 0
    assert result.throughput == pytest.approx(20 / result.makespan)
    assert result.failed == 0
    assert 0 < result.execution_time_fraction() <= 1.0
    assert result.mean_execution_time() == pytest.approx(1.0, abs=0.1)


def test_workload_result_empty_edge():
    result = WorkloadResult(records=[], started_at=5.0, finished_at=5.0)
    assert result.completed == 0
    assert math.isinf(result.throughput)
    assert math.isnan(result.mean_queue_time())


# ---------------------------------------------------------------- client
def test_client_effective_bundle_size():
    env = Environment()
    dispatcher = SimDispatcher(env, FalkonConfig.paper_defaults(bundle_size=100))
    client = SimClient(env, dispatcher)
    assert client.effective_bundle_size() == 100
    assert client.effective_bundle_size(7) == 7
    with pytest.raises(ValueError):
        client.effective_bundle_size(0)


def test_client_bundling_disabled_means_one():
    env = Environment()
    dispatcher = SimDispatcher(env, FalkonConfig.paper_defaults(client_bundling=False))
    client = SimClient(env, dispatcher)
    assert client.effective_bundle_size() == 1


def test_client_counts_bundles():
    env = Environment()
    dispatcher = SimDispatcher(env, FalkonConfig.paper_defaults())
    client = SimClient(env, dispatcher)
    proc = env.process(client.submit(sleep_tasks(250, prefix="cb"), bundle_size=100))
    env.run(until=proc)
    assert client.bundles_sent == 3
    assert client.tasks_sent == 250
    assert dispatcher.tasks_accepted == 250


def test_client_submit_empty_is_noop():
    env = Environment()
    dispatcher = SimDispatcher(env, FalkonConfig.paper_defaults())
    client = SimClient(env, dispatcher)
    proc = env.process(client.submit([]))
    records = env.run(until=proc)
    assert records == []
    assert client.bundles_sent == 0


def test_client_submit_and_wait():
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(2)
    env = system.env
    proc = env.process(system.client.submit_and_wait(sleep_tasks(5, prefix="sw")))
    results = env.run(until=proc)
    assert len(results) == 5
    assert all(r.ok for r in results)


# ---------------------------------------------------------------- staging
def test_staging_requires_bound_filesystem():
    env = Environment()
    staging = StagingModel(shared=None, local=LocalDisk(env))
    task = TaskSpec(
        task_id="t", reads=(DataRef("x", 10, DataLocation.SHARED),)
    )
    with pytest.raises(RuntimeError, match="no filesystem model"):
        next(staging.stage_in(env, task, "n0"))


def test_staging_routes_by_location():
    env = Environment()
    shared = SharedFileSystem(env)
    local = LocalDisk(env)
    staging = StagingModel(shared=shared, local=local)
    task = TaskSpec(
        task_id="t",
        reads=(
            DataRef("s", 1000, DataLocation.SHARED),
            DataRef("l", 1000, DataLocation.LOCAL),
        ),
        writes=(DataRef("o", 500, DataLocation.SHARED),),
    )

    def runner():
        yield from staging.stage_in(env, task, "node7")
        yield from staging.stage_out(env, task, "node7")

    env.process(runner())
    env.run()
    assert shared.bytes_read == 1000
    assert local.bytes_read == 1000
    assert shared.bytes_written == 500


def test_staging_zero_refs_is_fast():
    env = Environment()
    staging = StagingModel(shared=SharedFileSystem(env), local=LocalDisk(env))
    task = TaskSpec(task_id="t")

    def runner():
        yield from staging.stage_in(env, task, "n")
        yield from staging.stage_out(env, task, "n")

    env.process(runner())
    env.run()
    assert env.now == 0.0
