"""Property-based tests for the batch-scheduler substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.lrm import BatchScheduler, JobState, LRMConfig
from repro.sim import Environment


job_strategy = st.tuples(
    st.integers(1, 6),                      # nodes
    st.floats(0.0, 50.0),                   # body duration
    st.floats(0.0, 120.0),                  # submit delay
)


@given(jobs=st.lists(job_strategy, min_size=1, max_size=15), cluster_nodes=st.integers(6, 12))
@settings(max_examples=30, deadline=None)
def test_all_jobs_terminate_and_nodes_balance(jobs, cluster_nodes):
    env = Environment()
    cluster = Cluster(
        env, ClusterSpec(name="p", nodes=cluster_nodes, node=NodeSpec(processors=1))
    )
    sched = BatchScheduler(
        env, cluster,
        LRMConfig(name="prop", poll_interval=10.0, start_overhead=0.5, cleanup_delay=0.2),
    )
    submitted = []
    over_allocated = []

    def body_for(duration):
        def body(env_, job_, machines):
            # Invariant probe: allocation never exceeds the cluster.
            if cluster.allocated_count() > cluster.spec.nodes:
                over_allocated.append(env_.now)
            yield env_.timeout(duration)

        return body

    def submitter(nodes, duration, delay):
        yield env.timeout(delay)
        submitted.append(sched.submit(nodes, walltime=duration + 100, body=body_for(duration)))

    for nodes, duration, delay in jobs:
        env.process(submitter(min(nodes, cluster_nodes), duration, delay))
    env.run()

    assert not over_allocated
    assert len(submitted) == len(jobs)
    # Every job reached DONE and released its machines.
    assert all(job.state is JobState.DONE for job in submitted)
    assert cluster.free_count() == cluster_nodes
    assert sched.jobs_completed == len(jobs)


@given(
    jobs=st.lists(st.floats(0.0, 20.0), min_size=2, max_size=10),
    cancel_index=st.integers(0, 9),
)
@settings(max_examples=30, deadline=None)
def test_cancellation_never_leaks_machines(jobs, cancel_index):
    env = Environment()
    cluster = Cluster(env, ClusterSpec(name="c", nodes=4, node=NodeSpec(processors=1)))
    sched = BatchScheduler(
        env, cluster,
        LRMConfig(name="cx", poll_interval=5.0, start_overhead=0.3, cleanup_delay=0.1),
    )

    def body_for(duration):
        def body(env_, job_, machines):
            yield env_.timeout(duration)

        return body

    handles = [
        sched.submit(1, walltime=500, body=body_for(duration)) for duration in jobs
    ]
    victim = handles[cancel_index % len(handles)]

    def canceller():
        yield env.timeout(2.0)
        sched.cancel(victim)

    env.process(canceller())
    env.run()
    assert all(job.state.terminal for job in handles)
    assert cluster.free_count() == 4
    # The victim either finished before the cancel or was cancelled.
    assert victim.state in (JobState.DONE, JobState.CANCELED)


@given(widths=st.lists(st.integers(1, 3), min_size=2, max_size=8))
@settings(max_examples=30, deadline=None)
def test_fifo_start_order(widths):
    """Jobs submitted together start in submission order (strict FIFO)."""
    env = Environment()
    cluster = Cluster(env, ClusterSpec(name="f", nodes=3, node=NodeSpec(processors=1)))
    sched = BatchScheduler(
        env, cluster,
        LRMConfig(name="fifo", poll_interval=5.0, start_overhead=0.2, cleanup_delay=0.1),
    )
    order = []

    def body_factory(index):
        def body(env_, job_, machines):
            order.append(index)
            yield env_.timeout(1.0)

        return body

    jobs = [
        sched.submit(width, walltime=100, body=body_factory(i))
        for i, width in enumerate(widths)
    ]
    env.run()
    assert order == sorted(order)
    assert all(job.state is JobState.DONE for job in jobs)
