"""PBS / Condor calibration tests against Table 2, plus GRAM4 and MyCluster."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.lrm import (
    CONDOR_672_CONFIG,
    Gram4Gateway,
    GramConfig,
    MyCluster,
    make_condor,
    make_pbs,
)
from repro.sim import Environment
from repro.types import TaskSpec


def cluster_of(env, nodes):
    return Cluster(env, ClusterSpec(name="tg", nodes=nodes, node=NodeSpec()))


def run_sleep0_jobs(env, sched, n_jobs):
    def body(env_, job_, machines):
        yield env_.timeout(0.0)

    jobs = [sched.submit(1, walltime=600, body=body) for _ in range(n_jobs)]
    env.run(until=env.all_of([j.completed for j in jobs]))
    return env.now


def test_pbs_throughput_near_045_tasks_per_sec():
    """§4.1: 100 sleep-0 jobs on 64 nodes took ~224 s (0.45 tasks/s)."""
    env = Environment()
    sched = make_pbs(env, cluster_of(env, 64))
    elapsed = run_sleep0_jobs(env, sched, 100)
    rate = 100 / elapsed
    assert rate == pytest.approx(0.45, rel=0.10)


def test_condor_672_throughput_near_049_tasks_per_sec():
    """§4.1: 100 sleep-0 jobs over Condor took ~203 s (0.49 tasks/s)."""
    env = Environment()
    sched = make_condor(env, cluster_of(env, 64), version="6.7.2")
    elapsed = run_sleep0_jobs(env, sched, 100)
    rate = 100 / elapsed
    assert rate == pytest.approx(0.49, rel=0.10)


def test_condor_693_throughput_near_11_tasks_per_sec():
    """§4.4 cites 11 tasks/s for Condor v6.9.3."""
    env = Environment()
    sched = make_condor(env, cluster_of(env, 64), version="6.9.3")
    elapsed = run_sleep0_jobs(env, sched, 300)
    rate = 300 / elapsed
    assert rate == pytest.approx(11.0, rel=0.15)


def test_unknown_condor_version_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        make_condor(env, cluster_of(env, 4), version="9.9")


def test_pbs_allocation_latency_in_5_to_65s_band():
    """§4.6: creation latency varies 5–65 s with the 60 s poll loop."""
    latencies = []
    for submit_at in (0.5, 15.0, 30.0, 59.0):
        env = Environment()
        sched = make_pbs(env, cluster_of(env, 8))
        job_box = {}

        def submitter(at=submit_at):
            yield env.timeout(at)
            job_box["job"] = sched.submit(1, walltime=100)

        env.process(submitter())
        env.run(until=200.0)
        job = job_box["job"]
        latencies.append(job.start_time - job.submit_time)
    assert all(0 < lat <= 65.0 for lat in latencies)
    assert max(latencies) > 30.0  # just-missed-the-poll case


def test_gram4_task_execution_time_inflated_by_38s():
    """Table 3: 17.8 s tasks measure ~56.5 s under GRAM4+PBS."""
    env = Environment()
    gateway = Gram4Gateway(env, make_pbs(env, cluster_of(env, 4)))
    results = []

    def runner():
        result = yield from gateway.run_task(TaskSpec.sleep(17.8, task_id="t1"))
        results.append(result)

    env.process(runner())
    env.run()
    (result,) = results
    assert result.ok
    assert result.timeline.execution_time == pytest.approx(56.5, abs=0.5)
    assert gateway.tasks_run == 1


def test_gram4_request_serialization():
    env = Environment()
    gateway = Gram4Gateway(
        env, make_pbs(env, cluster_of(env, 8)), GramConfig(request_overhead=1.0)
    )
    submit_times = []

    def allocator():
        job = yield from gateway.allocate(nodes=1, walltime=50)
        submit_times.append((env.now, job.job_id))

    for _ in range(3):
        env.process(allocator())
    env.run(until=10.0)
    times = [t for t, _ in submit_times]
    assert times == pytest.approx([1.0, 2.0, 3.0])
    assert gateway.requests_handled == 3


def test_gram4_allocate_cancel_roundtrip():
    env = Environment()
    gateway = Gram4Gateway(env, make_pbs(env, cluster_of(env, 4)))
    boxes = {}

    def flow():
        job = yield from gateway.allocate(nodes=2, walltime=1000)
        boxes["job"] = job
        yield job.started
        gateway.cancel(job)
        yield job.completed

    env.process(flow())
    env.run()
    assert boxes["job"].state.terminal
    assert gateway.free_nodes() == 4


def test_mycluster_builds_personal_pool():
    env = Environment()
    host = make_pbs(env, cluster_of(env, 64))
    mc = MyCluster(env, host, nodes=64, personal_config=CONDOR_672_CONFIG)
    env.run(until=mc.ready)
    assert mc.scheduler is not None
    # The host cluster's machines are all bound to the glide-in.
    assert host.free_nodes() == 0
    # The personal pool exposes 64 nodes of its own.
    assert mc.scheduler.free_nodes() == 64


def test_mycluster_runs_jobs_at_personal_rate():
    env = Environment()
    host = make_pbs(env, cluster_of(env, 64))
    mc = MyCluster(env, host, nodes=64, personal_config=CONDOR_672_CONFIG)
    env.run(until=mc.ready)
    t0 = env.now
    elapsed = run_sleep0_jobs(env, mc.scheduler, 100) - t0
    rate = 100 / elapsed
    assert rate == pytest.approx(0.49, rel=0.10)


def test_mycluster_shutdown_releases_host_nodes():
    env = Environment()
    host = make_pbs(env, cluster_of(env, 16))
    mc = MyCluster(env, host, nodes=16, personal_config=CONDOR_672_CONFIG)
    env.run(until=mc.ready)
    mc.shutdown()
    env.run(until=env.now + 200.0)
    assert host.free_nodes() == 16


def test_mycluster_validation():
    env = Environment()
    host = make_pbs(env, cluster_of(env, 4))
    with pytest.raises(ValueError):
        MyCluster(env, host, nodes=0, personal_config=CONDOR_672_CONFIG)
