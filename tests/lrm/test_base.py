"""Unit tests for the generic batch scheduler."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.errors import ProvisioningError
from repro.lrm import BatchScheduler, JobState, LRMConfig
from repro.sim import Environment, Interrupt


def make_sched(nodes=4, poll=10.0, start=1.0, cleanup=0.5, free_limit=None):
    env = Environment()
    cluster = Cluster(
        env, ClusterSpec(name="c", nodes=nodes, node=NodeSpec()), free_limit=free_limit
    )
    sched = BatchScheduler(
        env,
        cluster,
        LRMConfig(name="test", poll_interval=poll, start_overhead=start, cleanup_delay=cleanup),
    )
    return env, cluster, sched


def test_submit_validation():
    env, _, sched = make_sched(nodes=4)
    with pytest.raises(ValueError):
        sched.submit(0)
    with pytest.raises(ProvisioningError):
        sched.submit(5)
    with pytest.raises(ValueError):
        sched.submit(1, walltime=0)


def test_job_runs_body_and_completes():
    env, cluster, sched = make_sched()
    trace = []

    def body(env_, job_, machines):
        trace.append(("start", env_.now, len(machines)))
        yield env_.timeout(5.0)
        trace.append(("end", env_.now))

    job = sched.submit(nodes=2, walltime=100.0, body=body)
    env.run(until=job.completed)
    assert job.state is JobState.DONE
    assert trace[0] == ("start", 1.0, 2)  # start_overhead=1.0
    assert trace[1] == ("end", 6.0)
    assert job.queue_wait == pytest.approx(1.0)


def test_machines_release_after_cleanup():
    env, cluster, sched = make_sched(cleanup=0.5)

    def body(env_, job_, machines):
        yield env_.timeout(2.0)

    job = sched.submit(nodes=4, walltime=100.0, body=body)
    env.run(until=job.completed)
    assert cluster.free_count() == 4
    # completed at start(1.0) + body(2.0) + cleanup(0.5)
    assert env.now == pytest.approx(3.5)


def test_fifo_and_poll_latency():
    # Two 3-node jobs on a 4-node cluster: second waits for the first
    # to finish and is only picked up at the next poll tick.
    env, cluster, sched = make_sched(nodes=4, poll=10.0, start=1.0, cleanup=0.5)
    starts = []

    def body(env_, job_, machines):
        starts.append(env_.now)
        yield env_.timeout(2.0)

    j1 = sched.submit(3, walltime=100, body=body)
    j2 = sched.submit(3, walltime=100, body=body)
    env.run(until=j2.completed)
    assert starts[0] == pytest.approx(1.0)
    # j1 ends 3.0, cleanup to 3.5; next poll at 10.0 (cycle 0 began at 0),
    # plus 1.0 start overhead -> j2 starts at 11.0.
    assert starts[1] == pytest.approx(11.0)


def test_serialized_start_overhead_sets_throughput():
    # 20 one-node sleep-0 jobs, plenty of nodes: completion rate is
    # bounded by the serialized start overhead.
    env, cluster, sched = make_sched(nodes=30, start=2.0, cleanup=0.1)

    def body(env_, job_, machines):
        yield env_.timeout(0.0)

    jobs = [sched.submit(1, walltime=50, body=body) for _ in range(20)]
    env.run(until=jobs[-1].completed)
    assert env.now == pytest.approx(20 * 2.0 + 0.1, rel=0.02)


def test_lease_job_holds_until_walltime():
    env, cluster, sched = make_sched()
    job = sched.submit(2, walltime=30.0)
    env.run(until=job.started)
    assert cluster.free_count() == 2
    env.run(until=job.completed)
    assert job.state is JobState.DONE
    assert env.now == pytest.approx(1.0 + 30.0 + 0.5)
    assert cluster.free_count() == 4


def test_cancel_queued_job():
    env, cluster, sched = make_sched(nodes=2)
    blocker = sched.submit(2, walltime=100.0)
    victim = sched.submit(2, walltime=100.0)
    env.run(until=blocker.started)
    assert victim.state is JobState.QUEUED
    sched.cancel(victim)
    assert victim.state is JobState.CANCELED
    env.run(until=victim.completed)
    assert victim.completed.value is JobState.CANCELED


def test_cancel_running_lease_releases_machines():
    env, cluster, sched = make_sched()
    job = sched.submit(3, walltime=1000.0)
    env.run(until=job.started)

    def canceller():
        yield env.timeout(5.0)
        sched.cancel(job)

    env.process(canceller())
    env.run(until=job.completed)
    assert job.state is JobState.CANCELED
    assert cluster.free_count() == 4
    assert env.now < 100  # well before walltime


def test_cancel_running_body_interrupts_it():
    env, cluster, sched = make_sched()
    interrupted = []

    def body(env_, job_, machines):
        try:
            yield env_.timeout(1000.0)
        except Interrupt:
            interrupted.append(env_.now)

    job = sched.submit(1, walltime=2000.0, body=body)
    env.run(until=job.started)

    def canceller():
        yield env.timeout(3.0)
        sched.cancel(job)

    env.process(canceller())
    env.run(until=job.completed)
    assert job.state is JobState.CANCELED
    assert interrupted and interrupted[0] == pytest.approx(4.0)
    assert cluster.free_count() == 4


def test_cancel_terminal_job_is_noop():
    env, cluster, sched = make_sched()

    def body(env_, job_, machines):
        yield env_.timeout(1.0)

    job = sched.submit(1, walltime=10, body=body)
    env.run(until=job.completed)
    sched.cancel(job)  # no exception
    assert job.state is JobState.DONE


def test_walltime_kills_body():
    env, cluster, sched = make_sched()

    def runaway(env_, job_, machines):
        yield env_.timeout(1e9)

    job = sched.submit(1, walltime=5.0, body=runaway)
    env.run(until=job.completed)
    assert job.state is JobState.FAILED
    assert env.now == pytest.approx(1.0 + 5.0 + 0.5)
    assert cluster.free_count() == 4


def test_body_exception_fails_job_but_releases_nodes():
    env, cluster, sched = make_sched()

    def bad(env_, job_, machines):
        yield env_.timeout(1.0)
        raise ValueError("app crash")

    job = sched.submit(2, walltime=50, body=bad)
    env.run(until=job.completed)
    assert job.state is JobState.FAILED
    assert cluster.free_count() == 4


def test_cancel_before_start_via_flag():
    # Cancel arriving while the job is mid-start (STARTING window).
    env, cluster, sched = make_sched(start=5.0)
    job = sched.submit(1, walltime=100.0)

    def canceller():
        yield env.timeout(2.0)  # inside the 5 s start window
        assert job.state is JobState.STARTING
        sched.cancel(job)

    env.process(canceller())
    env.run(until=job.completed)
    assert job.state is JobState.CANCELED
    assert cluster.free_count() == 4


def test_free_nodes_reflects_allocations():
    env, cluster, sched = make_sched()
    job = sched.submit(3, walltime=100.0)
    assert sched.free_nodes() == 4
    env.run(until=job.started)
    assert sched.free_nodes() == 1


def test_gauges_and_counters():
    env, cluster, sched = make_sched()

    def body(env_, job_, machines):
        yield env_.timeout(1.0)

    jobs = [sched.submit(1, walltime=10, body=body) for _ in range(3)]
    env.run(until=jobs[-1].completed)
    assert sched.jobs_submitted == 3
    assert sched.jobs_completed == 3
    assert sched.queue_gauge.max() == 3
    assert sched.running_gauge.current == 0
