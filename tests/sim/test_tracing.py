"""Tests for the trace ring buffer and dispatcher trace emission."""

import pytest

from repro import FalkonConfig
from repro.core.dispatcher import SimDispatcher
from repro.core.executor import SimExecutor
from repro.sim import Environment, TraceEvent, Tracer
from repro.types import TaskSpec


def test_tracer_validation():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_emit_and_query():
    tracer = Tracer()
    tracer.emit(1.0, "submit", task="t1")
    tracer.emit(2.0, "dispatch", task="t1", executor="e1")
    assert len(tracer) == 2
    assert tracer.count("submit") == 1
    assert tracer.events("dispatch")[0].get("executor") == "e1"
    assert tracer.events("dispatch")[0].get("missing", "x") == "x"
    assert tracer.kinds() == {"submit": 1, "dispatch": 1}


def test_ring_buffer_bounds_memory():
    tracer = Tracer(capacity=10)
    for i in range(100):
        tracer.emit(float(i), "tick", n=i)
    assert len(tracer) == 10
    assert tracer.total_emitted == 100
    assert tracer.count("tick") == 100  # tallies survive eviction
    assert tracer.events("tick")[0].get("n") == 90


def test_predicate_filter():
    tracer = Tracer()
    for i in range(5):
        tracer.emit(float(i), "e", n=i)
    evens = tracer.events(predicate=lambda e: e.get("n") % 2 == 0)
    assert [e.get("n") for e in evens] == [0, 2, 4]


def test_format_and_str():
    tracer = Tracer()
    tracer.emit(1.5, "gc", pause=0.8)
    text = tracer.format()
    assert "gc" in text and "pause=0.8" in text
    assert str(TraceEvent(0.0, "x")) .startswith("[")


def test_clear():
    tracer = Tracer()
    tracer.emit(0.0, "a")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.count("a") == 1  # all-time tally preserved


def test_dispatcher_emits_protocol_trace():
    env = Environment()
    tracer = Tracer()
    dispatcher = SimDispatcher(env, FalkonConfig.paper_defaults(), tracer=tracer)
    SimExecutor(env, dispatcher, startup_delay=0.0)
    dispatcher.accept_tasks_now(
        [TaskSpec.sleep(0, task_id=f"tr{i}") for i in range(5)]
    )
    env.run(until=dispatcher.completion_milestone(5))
    assert tracer.count("submit") == 5
    assert tracer.count("dispatch") == 5
    assert tracer.count("complete") == 5
    # Protocol ordering per task: submit <= dispatch <= complete.
    for tid in (f"tr{i}" for i in range(5)):
        times = {
            kind: [e.time for e in tracer.events(kind) if e.get("task") == tid]
            for kind in ("submit", "dispatch", "complete")
        }
        assert times["submit"][0] <= times["dispatch"][0] <= times["complete"][0]


def test_dispatcher_traces_retries_and_failures():
    env = Environment()
    tracer = Tracer()
    dispatcher = SimDispatcher(
        env, FalkonConfig.paper_defaults(max_retries=2), tracer=tracer
    )
    import numpy as np

    SimExecutor(
        env, dispatcher, startup_delay=0.0,
        failure_rate=1.0, rng=np.random.default_rng(0),
    )
    dispatcher.accept_tasks_now([TaskSpec.sleep(0, task_id="doomed")])
    env.run(until=dispatcher.completion_milestone(1))
    assert tracer.count("retry") == 2
    assert tracer.count("fail") == 1
    assert tracer.count("complete") == 0


def test_dispatcher_traces_gc():
    from repro.cluster.jvm import JVMModel

    env = Environment()
    tracer = Tracer()
    dispatcher = SimDispatcher(
        env, FalkonConfig.paper_defaults(),
        jvm=JVMModel(tasks_per_gc=5), tracer=tracer,
    )
    SimExecutor(env, dispatcher, startup_delay=0.0)
    dispatcher.accept_tasks_now(
        [TaskSpec.sleep(0, task_id=f"g{i}") for i in range(20)]
    )
    env.run(until=dispatcher.completion_milestone(20))
    assert tracer.count("gc") >= 2
    pause = tracer.events("gc")[0].get("pause")
    assert pause > 0
