"""Unit tests for Store, FilterStore and PriorityStore."""

import pytest

from repro.sim import Environment, FilterStore, PriorityStore, Store


def test_store_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in ("a", "b", "c"):
            yield store.put(item)
            yield env.timeout(1.0)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append((env.now, item))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert [item for _, item in received] == ["a", "b", "c"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(5.0)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(5.0, "late")]


def test_store_bounded_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put(1)
        times.append(env.now)
        yield store.put(2)
        times.append(env.now)

    def consumer():
        yield env.timeout(4.0)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [0.0, 4.0]


def test_store_len_tracks_items():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    env.run()
    assert len(store) == 2
    store.get()
    env.run()
    assert len(store) == 1


def test_store_getters_waiting():
    env = Environment()
    store = Store(env)

    def consumer():
        yield store.get()

    env.process(consumer())
    env.run()
    assert store.getters_waiting == 1
    store.put("x")
    env.run()
    assert store.getters_waiting == 0


def test_store_get_cancel():
    env = Environment()
    store = Store(env)
    received = []

    def fickle():
        get = store.get()
        yield env.timeout(1.0)
        get.cancel()

    def steady():
        item = yield store.get()
        received.append(item)

    def producer():
        yield env.timeout(2.0)
        yield store.put("only")

    env.process(fickle())
    env.process(steady())
    env.process(producer())
    env.run()
    # The cancelled getter must not swallow the item.
    assert received == ["only"]


def test_filter_store_matches_predicate():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer():
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    env.process(consumer())
    store.put(1)
    store.put(3)
    store.put(4)
    env.run()
    assert got == [4]
    assert list(store.items) == [1, 3]


def test_filter_store_unmatched_getter_does_not_block_others():
    env = Environment()
    store = FilterStore(env)
    got = []

    def picky():
        item = yield store.get(lambda x: x == "never")
        got.append(("picky", item))

    def easy():
        item = yield store.get()
        got.append(("easy", item))

    env.process(picky())
    env.process(easy())
    store.put("plain")
    env.run(until=20.0)
    assert got == [("easy", "plain")]


def test_filter_store_blocked_getter_wakes_on_matching_put():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer():
        item = yield store.get(lambda x: x > 10)
        got.append((env.now, item))

    def producer():
        yield env.timeout(1.0)
        yield store.put(5)
        yield env.timeout(1.0)
        yield store.put(50)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(2.0, 50)]


def test_priority_store_yields_smallest():
    env = Environment()
    store = PriorityStore(env)
    for value in (5, 1, 3):
        store.put(value)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(consumer())
    env.run()
    assert got == [1, 3, 5]


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)
