"""Unit tests for the DES event loop (Environment, Event, Process)."""

import pytest

from repro.sim import Environment, Event, Interrupt, StopSimulation


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=42.5).now == 42.5


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(3.0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [3.0]
    assert env.now == 3.0


def test_timeout_carries_value():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1.0, value="payload")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["payload"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(10.0)

    env.process(ticker())
    env.run(until=25.0)
    assert env.now == 25.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc():
        yield env.timeout(2.0)
        return "result"

    p = env.process(proc())
    assert env.run(until=p) == "result"
    assert env.now == 2.0


def test_processes_interleave_in_time_order():
    env = Environment()
    trace = []

    def proc(name, delay):
        yield env.timeout(delay)
        trace.append((name, env.now))

    env.process(proc("slow", 5))
    env.process(proc("fast", 1))
    env.process(proc("mid", 3))
    env.run()
    assert trace == [("fast", 1), ("mid", 3), ("slow", 5)]


def test_same_time_events_fifo():
    env = Environment()
    trace = []

    def proc(name):
        yield env.timeout(1.0)
        trace.append(name)

    for name in "abc":
        env.process(proc(name))
    env.run()
    assert trace == ["a", "b", "c"]


def test_process_waits_on_process():
    env = Environment()
    trace = []

    def child():
        yield env.timeout(4.0)
        return 99

    def parent():
        value = yield env.process(child())
        trace.append((env.now, value))

    env.process(parent())
    env.run()
    assert trace == [(4.0, 99)]


def test_waiting_on_already_dead_process_returns_value():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return "early"

    def parent(c):
        yield env.timeout(10.0)
        value = yield c
        return value

    c = env.process(child())
    p = env.process(parent(c))
    assert env.run(until=p) == "early"


def test_manual_event_succeed():
    env = Environment()
    gate = env.event()
    trace = []

    def waiter():
        value = yield gate
        trace.append((env.now, value))

    def opener():
        yield env.timeout(7.0)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert trace == [(7.0, "open")]


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_event_value_unavailable_until_triggered():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_failed_event_raises_inside_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1.0)
        gate.fail(ValueError("boom"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates_from_run():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise KeyError("oops")

    env.process(bad())
    with pytest.raises(KeyError):
        env.run()


def test_unwaited_failed_event_propagates_unless_defused():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("lost failure"))
    with pytest.raises(RuntimeError, match="lost failure"):
        env.run()

    env2 = Environment()
    ev2 = env2.event()
    ev2.defused = True
    ev2.fail(RuntimeError("acknowledged"))
    env2.run()  # does not raise


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    p = env.process(bad())
    with pytest.raises(RuntimeError, match="non-event"):
        env.run(until=p)


def test_stop_simulation_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(3.0)
        raise StopSimulation("stopped")

    env.process(proc())
    assert env.run() == "stopped"
    assert env.now == 3.0


def test_interrupt_wakes_blocked_process():
    env = Environment()
    trace = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            trace.append((env.now, intr.cause))

    def interrupter(victim):
        yield env.timeout(5.0)
        victim.interrupt("wake up")

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    env.run()
    assert trace == [(5.0, "wake up")]


def test_interrupted_process_can_continue():
    env = Environment()
    trace = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        trace.append(env.now)

    def interrupter(victim):
        yield env.timeout(5.0)
        victim.interrupt()

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    env.run()
    assert trace == [6.0]


def test_interrupt_does_not_leave_stale_resume():
    # After an interrupt, the original timeout firing must not resume
    # the process a second time.
    env = Environment()
    resumed = []

    def sleeper():
        try:
            yield env.timeout(10.0)
        except Interrupt:
            resumed.append("interrupted")
        yield env.timeout(50.0)
        resumed.append("finished")

    def interrupter(victim):
        yield env.timeout(1.0)
        victim.interrupt()

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    env.run()
    assert resumed == ["interrupted", "finished"]
    assert env.now == 51.0


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_process_cannot_interrupt_itself():
    env = Environment()
    errors = []

    def selfish():
        yield env.timeout(0)
        try:
            env.active_process.interrupt()
        except RuntimeError as exc:
            errors.append(str(exc))

    env.process(selfish())
    env.run()
    assert len(errors) == 1


def test_interrupt_unstarted_process():
    env = Environment()
    outcome = []

    def victim_gen():
        outcome.append("started")
        yield env.timeout(1.0)

    def immediate_interrupter(victim):
        victim.interrupt("too soon")
        return
        yield  # pragma: no cover

    victim = env.process(victim_gen())
    # Interrupt scheduled before the victim's start-up event runs.  The
    # generator never gets to run its body, so the Interrupt is uncaught
    # and the process fails with it.
    victim.interrupt("before start")
    with pytest.raises(Interrupt):
        env.run()
    assert outcome == []
    assert not victim.is_alive
    assert isinstance(victim.value, Interrupt)


def test_uncaught_interrupt_fails_process():
    env = Environment()

    def stoic():
        yield env.timeout(100.0)

    def interrupter(victim):
        yield env.timeout(1.0)
        victim.interrupt("fatal")

    victim = env.process(stoic())
    env.process(interrupter(victim))
    with pytest.raises(Interrupt):
        env.run(until=victim)


def test_peek_and_step():
    env = Environment()
    env.process(iter_timeout(env, 5.0))
    assert env.peek() == 0.0  # process start-up event
    env.step()
    assert env.peek() == 5.0
    env.step()
    assert env.now == 5.0
    env.step()  # the process-termination event itself
    assert env.peek() == float("inf")


def iter_timeout(env, delay):
    yield env.timeout(delay)


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_foreign_event_rejected():
    env1, env2 = Environment(), Environment()

    def proc():
        yield env2.timeout(1.0)

    env1.process(proc())
    with pytest.raises(RuntimeError, match="different Environment"):
        env1.run()


def test_active_process_visible_during_resume():
    env = Environment()
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(1.0)
        seen.append(env.active_process)

    p = env.process(proc())
    env.run()
    assert seen == [p, p]
    assert env.active_process is None
