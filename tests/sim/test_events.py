"""Unit tests for composite events (AllOf / AnyOf)."""

import pytest

from repro.sim import AllOf, AnyOf, Environment


def test_all_of_waits_for_every_event():
    env = Environment()
    trace = []

    def proc():
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(5.0, value="b")
        result = yield env.all_of([t1, t2])
        trace.append((env.now, sorted(result.values())))

    env.process(proc())
    env.run()
    assert trace == [(5.0, ["a", "b"])]


def test_any_of_fires_on_first():
    env = Environment()
    trace = []

    def proc():
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        result = yield env.any_of([t1, t2])
        trace.append((env.now, list(result.values())))

    env.process(proc())
    env.run()
    assert trace == [(1.0, ["fast"])]


def test_all_of_empty_succeeds_immediately():
    env = Environment()
    trace = []

    def proc():
        result = yield env.all_of([])
        trace.append((env.now, result))

    env.process(proc())
    env.run()
    assert trace == [(0.0, {})]


def test_any_of_empty_succeeds_immediately():
    env = Environment()
    trace = []

    def proc():
        yield env.any_of([])
        trace.append(env.now)

    env.process(proc())
    env.run()
    assert trace == [0.0]


def test_all_of_with_already_processed_events():
    env = Environment()
    trace = []

    def proc():
        t1 = env.timeout(1.0, value=1)
        yield env.timeout(2.0)  # t1 is processed by now
        t2 = env.timeout(1.0, value=2)
        result = yield env.all_of([t1, t2])
        trace.append((env.now, sorted(result.values())))

    env.process(proc())
    env.run()
    assert trace == [(3.0, [1, 2])]


def test_all_of_fails_fast_on_failure():
    env = Environment()
    caught = []

    def proc():
        gate = env.event()
        slow = env.timeout(100.0)

        def failer():
            yield env.timeout(1.0)
            gate.fail(ValueError("bad"))

        env.process(failer())
        try:
            yield env.all_of([gate, slow])
        except ValueError:
            caught.append(env.now)

    env.process(proc())
    env.run()
    assert caught == [1.0]


def test_any_of_propagates_failure():
    env = Environment()
    caught = []

    def proc():
        gate = env.event()

        def failer():
            yield env.timeout(2.0)
            gate.fail(KeyError("nope"))

        env.process(failer())
        try:
            yield env.any_of([gate, env.timeout(100.0)])
        except KeyError:
            caught.append(env.now)

    env.process(proc())
    env.run()
    assert caught == [2.0]


def test_condition_rejects_mixed_environments():
    env1, env2 = Environment(), Environment()
    t1 = env1.timeout(1.0)
    t2 = env2.timeout(1.0)
    with pytest.raises(RuntimeError):
        AllOf(env1, [t1, t2])


def test_all_of_with_processes():
    env = Environment()

    def worker(delay, tag):
        yield env.timeout(delay)
        return tag

    def coordinator():
        procs = [env.process(worker(d, f"w{d}")) for d in (3, 1, 2)]
        result = yield AllOf(env, procs)
        return sorted(result.values())

    p = env.process(coordinator())
    assert env.run(until=p) == ["w1", "w2", "w3"]
    assert env.now == 3.0


def test_any_of_result_contains_only_completed():
    env = Environment()

    def proc():
        fast = env.timeout(1.0, value="f")
        slow = env.timeout(9.0, value="s")
        result = yield AnyOf(env, [fast, slow])
        assert list(result.values()) == ["f"]
        # The slow event still completes later without error.
        yield slow
        return env.now

    p = env.process(proc())
    assert env.run(until=p) == 9.0
