"""Unit tests for Resource, PriorityResource and Container."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    holders = []

    def user(name):
        with res.request() as req:
            yield req
            holders.append((name, env.now))
            yield env.timeout(10.0)

    for name in "abc":
        env.process(user(name))
    env.run()
    # a and b get in at t=0; c waits until one releases at t=10.
    assert holders == [("a", 0.0), ("b", 0.0), ("c", 10.0)]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(name, arrive):
        yield env.timeout(arrive)
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(5.0)

    env.process(user("first", 0.0))
    env.process(user("second", 1.0))
    env.process(user("third", 2.0))
    env.run()
    assert order == ["first", "second", "third"]


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            assert res.in_use == 1
            yield env.timeout(5.0)

    def waiter():
        yield env.timeout(1.0)
        with res.request() as req:
            assert res.queue_length == 1
            yield req

    env.process(holder())
    env.process(waiter())
    env.run()
    assert res.in_use == 0
    assert res.queue_length == 0


def test_release_requires_held_request():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    env.run()
    res.release(req)
    with pytest.raises(RuntimeError):
        res.release(req)


def test_context_manager_releases_on_exception():
    env = Environment()
    res = Resource(env, capacity=1)

    def crasher():
        with res.request() as req:
            yield req
            raise ValueError("boom")

    def follower():
        yield env.timeout(1.0)
        with res.request() as req:
            yield req
            return env.now

    env.process(crasher())
    p = env.process(follower())
    with pytest.raises(ValueError):
        env.run()
    assert env.run(until=p) == 1.0


def test_cancel_ungranted_request():
    env = Environment()
    res = Resource(env, capacity=1)
    grabbed = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def impatient():
        yield env.timeout(1.0)
        req = res.request()
        yield env.timeout(2.0)  # still queued
        req.cancel()

    def patient():
        yield env.timeout(2.0)
        with res.request() as req:
            yield req
            grabbed.append(env.now)

    env.process(holder())
    env.process(impatient())
    env.process(patient())
    env.run()
    # The cancelled request must not absorb the freed slot.
    assert grabbed == [10.0]


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_priority_resource_orders_waiters():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def user(name, priority, arrive):
        yield env.timeout(arrive)
        with res.request(priority=priority) as req:
            yield req
            order.append(name)
            yield env.timeout(1.0)

    env.process(holder())
    env.process(user("low", 5, 1.0))
    env.process(user("high", 0, 2.0))
    env.run()
    assert order == ["high", "low"]


def test_container_get_blocks_until_available():
    env = Environment()
    tank = Container(env, capacity=100.0, init=0.0)
    got = []

    def consumer():
        yield tank.get(30.0)
        got.append(env.now)

    def producer():
        yield env.timeout(2.0)
        yield tank.put(10.0)
        yield env.timeout(2.0)
        yield tank.put(25.0)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [4.0]
    assert tank.level == 5.0


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10.0, init=10.0)
    done = []

    def producer():
        yield tank.put(5.0)
        done.append(env.now)

    def consumer():
        yield env.timeout(3.0)
        yield tank.get(6.0)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert done == [3.0]
    assert tank.level == 9.0


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=9)
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.get(0)
    with pytest.raises(ValueError):
        tank.put(-1)
    with pytest.raises(ValueError):
        tank.put(6)


def test_container_gets_fifo():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    order = []

    def consumer(name, amount):
        yield tank.get(amount)
        order.append(name)

    def producer():
        yield env.timeout(1.0)
        yield tank.put(5.0)   # covers the first (big) get?  No: 5 < 10.
        yield env.timeout(1.0)
        yield tank.put(10.0)  # now 15 >= 10 -> big gets served first.

    env.process(consumer("big", 10.0))
    env.process(consumer("small", 1.0))
    env.process(producer())
    env.run()
    assert order == ["big", "small"]
