"""Property-based tests for the DES kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Counter, Environment, Resource, RngStreams, Store, TimeSeries


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_time_is_monotonic_across_arbitrary_timeouts(delays):
    env = Environment()
    observed = []

    def proc(d):
        yield env.timeout(d)
        observed.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
    assert env.now == max(delays)


@given(
    st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50)
def test_resource_never_exceeds_capacity_and_serves_everyone(durations, capacity):
    env = Environment()
    res = Resource(env, capacity=capacity)
    max_in_use = 0
    served = []

    def user(i, hold):
        nonlocal max_in_use
        with res.request() as req:
            yield req
            max_in_use = max(max_in_use, res.in_use)
            yield env.timeout(hold)
            served.append(i)

    for i, hold in enumerate(durations):
        env.process(user(i, hold))
    env.run()
    assert max_in_use <= capacity
    assert sorted(served) == list(range(len(durations)))
    assert res.in_use == 0


@given(st.lists(st.integers(), min_size=0, max_size=40))
def test_store_preserves_items_exactly(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == items


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=-50, max_value=50),
        ),
        min_size=2,
        max_size=40,
    )
)
def test_integrate_is_additive_over_subintervals(points):
    ts = TimeSeries()
    t = 0.0
    for dt, v in points:
        t += dt + 0.001
        ts.record(t, v)
    t0, t1 = ts.times[0], ts.times[-1]
    mid = (t0 + t1) / 2
    whole = ts.integrate(t0, t1)
    parts = ts.integrate(t0, mid) + ts.integrate(mid, t1)
    assert abs(whole - parts) < 1e-6 * max(1.0, abs(whole))


@given(st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=60))
def test_counter_buckets_conserve_event_count(gaps):
    c = Counter()
    t = 0.0
    for gap in gaps:
        t += gap
        c.tick(t)
    samples = c.throughput_samples(interval=1.0, start=0.0, end=t + 1.0)
    assert sum(samples.values) * 1.0 == c.count


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_rng_streams_are_reproducible_and_named(seed, name):
    a = RngStreams(seed).stream(name).random(5)
    b = RngStreams(seed).stream(name).random(5)
    assert (a == b).all()


def test_rng_streams_independent_of_creation_order():
    s1 = RngStreams(7)
    s1.stream("alpha")
    draw_after = s1.stream("beta").random(3)

    s2 = RngStreams(7)
    draw_direct = s2.stream("beta").random(3)
    assert (draw_after == draw_direct).all()


def test_rng_distinct_names_differ():
    s = RngStreams(0)
    assert s.stream("a").random() != s.stream("b").random()
    assert "a" in s and "c" not in s
