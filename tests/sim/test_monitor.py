"""Unit tests for TimeSeries, Gauge, Counter and moving_average."""

import pytest

from repro.sim import Counter, Gauge, TimeSeries, moving_average


def test_timeseries_records_in_order():
    ts = TimeSeries("q")
    ts.record(0.0, 1.0)
    ts.record(1.0, 2.0)
    assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
    assert len(ts) == 2
    assert ts.last == 2.0


def test_timeseries_rejects_time_regression():
    ts = TimeSeries()
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.record(4.0, 1.0)


def test_timeseries_value_at_step_semantics():
    ts = TimeSeries()
    ts.record(1.0, 10.0)
    ts.record(3.0, 20.0)
    assert ts.value_at(0.5) == 0.0
    assert ts.value_at(1.0) == 10.0
    assert ts.value_at(2.9) == 10.0
    assert ts.value_at(3.0) == 20.0
    assert ts.value_at(99.0) == 20.0


def test_timeseries_integrate_rectangles():
    ts = TimeSeries()
    ts.record(0.0, 2.0)
    ts.record(10.0, 4.0)
    ts.record(20.0, 0.0)
    assert ts.integrate(0.0, 20.0) == pytest.approx(2.0 * 10 + 4.0 * 10)
    assert ts.integrate(5.0, 15.0) == pytest.approx(2.0 * 5 + 4.0 * 5)
    assert ts.integrate() == pytest.approx(60.0)
    assert ts.integrate(20.0, 20.0) == 0.0


def test_timeseries_mean_is_time_weighted():
    ts = TimeSeries()
    ts.record(0.0, 0.0)
    ts.record(9.0, 100.0)  # value 0 for 9s
    ts.record(10.0, 0.0)   # value 100 for 1s
    assert ts.mean() == pytest.approx(10.0)


def test_timeseries_empty_defaults():
    ts = TimeSeries()
    assert ts.last == 0.0
    assert ts.max() == 0.0
    assert ts.integrate() == 0.0
    assert ts.mean() == 0.0


def test_gauge_add_and_set():
    g = Gauge("busy")
    g.add(0.0, 3)
    g.add(1.0, -1)
    g.set(2.0, 10)
    assert g.current == 10
    assert list(g) == [(0.0, 3), (1.0, 2), (2.0, 10)]


def test_gauge_initial_value():
    g = Gauge(initial=5)
    g.add(1.0, 1)
    assert g.current == 6


def test_counter_rate():
    c = Counter()
    for t in range(11):
        c.tick(float(t))
    assert c.count == 11
    assert c.rate() == pytest.approx(1.0)


def test_counter_tick_order_enforced():
    c = Counter()
    c.tick(5.0)
    with pytest.raises(ValueError):
        c.tick(4.0)


def test_counter_throughput_samples():
    c = Counter()
    # 3 events in [0,1), 0 in [1,2), 1 in [2,3)
    for t in (0.1, 0.5, 0.9, 2.5):
        c.tick(t)
    samples = c.throughput_samples(interval=1.0, start=0.0, end=3.0)
    assert samples.values == [3.0, 0.0, 1.0]
    assert samples.times == [0.0, 1.0, 2.0]


def test_counter_throughput_samples_empty():
    c = Counter()
    assert len(c.throughput_samples()) == 0


def test_moving_average_window():
    ts = TimeSeries()
    for i, v in enumerate([0.0, 10.0, 20.0, 30.0]):
        ts.record(float(i), v)
    ma = moving_average(ts, window=2)
    assert ma.values == [0.0, 5.0, 15.0, 25.0]


def test_moving_average_window_larger_than_series():
    ts = TimeSeries()
    ts.record(0.0, 4.0)
    ts.record(1.0, 8.0)
    ma = moving_average(ts, window=100)
    assert ma.values == [4.0, 6.0]


def test_moving_average_validation():
    with pytest.raises(ValueError):
        moving_average(TimeSeries(), 0)
