"""Tests for the synthetic grid-trace generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.traces import GridTrace, TraceConfig, generate_trace


def test_trace_is_reproducible():
    a = generate_trace(seed=3)
    b = generate_trace(seed=3)
    assert len(a) == len(b)
    assert [t.submit_at for t in a.tasks] == [t.submit_at for t in b.tasks]
    assert [t.spec.duration for t in a.tasks] == [t.spec.duration for t in b.tasks]


def test_different_seeds_differ():
    a = generate_trace(seed=1)
    b = generate_trace(seed=2)
    assert [t.submit_at for t in a.tasks] != [t.submit_at for t in b.tasks]


def test_trace_respects_horizon():
    config = TraceConfig(horizon=600.0)
    trace = generate_trace(config)
    assert all(t.submit_at < 600.0 for t in trace.tasks)


def test_batched_arrivals():
    """[37]: grid workloads arrive as batches of tasks."""
    trace = generate_trace(TraceConfig(horizon=3600.0, mean_batch_size=30.0), seed=5)
    assert trace.mean_batch_size() > 5.0
    batches = trace.batches()
    assert len(batches) > 10
    # Within a batch, all tasks share one submission instant.
    for batch in batches:
        assert len({t.submit_at for t in batch}) == 1


def test_heavy_tailed_runtimes():
    trace = generate_trace(TraceConfig(horizon=7200.0), seed=9)
    median = trace.runtime_percentile(50)
    p99 = trace.runtime_percentile(99)
    assert p99 > 5 * median  # heavy tail
    cfg = trace.config
    durations = [t.spec.duration for t in trace.tasks]
    assert all(cfg.min_runtime <= d <= cfg.max_runtime for d in durations)


def test_runtime_clipping():
    config = TraceConfig(min_runtime=1.0, max_runtime=10.0)
    trace = generate_trace(config, seed=4)
    assert trace.runtime_percentile(0) >= 1.0
    assert trace.runtime_percentile(100) <= 10.0


def test_diurnal_modulation_changes_density():
    flat = generate_trace(
        TraceConfig(horizon=86400.0, mean_batch_interarrival=300.0), seed=6
    )
    wavy = generate_trace(
        TraceConfig(
            horizon=86400.0,
            mean_batch_interarrival=300.0,
            diurnal_amplitude=6.0,
        ),
        seed=6,
    )
    # Both produce plausible traces; the modulated one is valid too.
    assert len(flat) > 0 and len(wavy) > 0


def test_total_cpu_seconds():
    trace = generate_trace(seed=0)
    assert trace.total_cpu_seconds() == pytest.approx(
        sum(t.spec.duration for t in trace.tasks)
    )


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(horizon=0),
        dict(mean_batch_interarrival=0),
        dict(mean_batch_size=0.5),
        dict(min_runtime=0),
        dict(min_runtime=5, max_runtime=1),
        dict(diurnal_amplitude=0.5),
        dict(diurnal_period=0),
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        TraceConfig(**kwargs)


@given(st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_trace_invariants_any_seed(seed):
    trace = generate_trace(TraceConfig(horizon=900.0), seed=seed)
    times = [t.submit_at for t in trace.tasks]
    assert times == sorted(times)
    ids = [t.spec.task_id for t in trace.tasks]
    assert len(set(ids)) == len(ids)
