"""Workload generators must match the paper's stated characteristics."""

import pytest

from repro.types import DataLocation
from repro.workloads import (
    STAGE_DURATIONS,
    STAGE_TASK_COUNTS,
    SWIFT_APPLICATIONS,
    fmri_workflow,
    montage_workflow,
    sleep_workload,
    stage18_machines_needed,
    stage18_summary,
    stage18_workload,
    uniform_workload,
)
from repro.workloads.fmri import fmri_task_count
from repro.workloads.montage import MONTAGE_STAGE_ORDER, MontageShape
from repro.workloads.stages18 import ideal_makespan_sequential, stage18_stage_lists
from repro.workloads.synthetic import data_workload


# ---------------------------------------------------------------- sleep
def test_sleep_workload_basic():
    tasks = sleep_workload(10, 0.0)
    assert len(tasks) == 10
    assert len({t.task_id for t in tasks}) == 10
    assert all(t.duration == 0.0 for t in tasks)
    with pytest.raises(ValueError):
        sleep_workload(0)


def test_uniform_workload_stage_tag():
    tasks = uniform_workload(5, 2.0, stage="s9")
    assert all(t.stage == "s9" and t.duration == 2.0 for t in tasks)


def test_data_workload_refs():
    read_only = data_workload(3, 1024, DataLocation.SHARED, write=False)
    assert all(t.total_read_bytes == 1024 and t.total_write_bytes == 0 for t in read_only)
    rw = data_workload(3, 1024, DataLocation.LOCAL, write=True)
    assert all(t.total_write_bytes == 1024 for t in rw)
    assert all(r.location is DataLocation.LOCAL for t in rw for r in t.reads)


# ---------------------------------------------------------------- 18-stage
def test_stage18_totals_match_paper():
    assert sum(STAGE_TASK_COUNTS) == 1000
    cpu = sum(c * d for c, d in zip(STAGE_TASK_COUNTS, STAGE_DURATIONS))
    assert cpu == 17820


def test_stage18_durations_match_paper():
    # All 60s except stages 8, 9, 10 = 120, 6, 12.
    for index, duration in enumerate(STAGE_DURATIONS, start=1):
        if index == 8:
            assert duration == 120
        elif index == 9:
            assert duration == 6
        elif index == 10:
            assert duration == 12
        else:
            assert duration == 60


def test_stage18_shape_narrative():
    c = STAGE_TASK_COUNTS
    # exponential ramp-up over the first 7 stages
    assert list(c[:7]) == [1, 2, 4, 8, 16, 32, 64]
    assert c[7] < c[6]            # sudden drop at stage 8
    assert c[8] > 100 and c[9] > 100  # surge at stages 9 and 10
    assert c[10] < c[9]           # drop at stage 11
    assert c[11] > c[10]          # modest increase at stage 12
    assert c[11] > c[12] > c[13]  # linear decrease 13, 14
    assert list(c[14:]) == [8, 4, 2, 1]  # exponential decrease to one


def test_stage18_machines_needed_capped_at_32():
    machines = stage18_machines_needed()
    assert max(machines) == 32
    assert machines[0] == 1 and machines[-1] == 1
    assert len(machines) == 18


def test_stage18_workflow_structure():
    wf = stage18_workload()
    # 1000 tasks + 18 barrier tasks.
    assert len(wf) == 1018
    assert wf.total_cpu_seconds() == 17820
    # Stage k tasks depend (via barrier) on stage k-1.
    node = wf.node("s02-t0000")
    assert node.deps == ("s01-barrier",)


def test_stage18_ideal_makespan_close_to_paper():
    ideal = ideal_makespan_sequential(32)
    assert ideal == pytest.approx(1260, rel=0.03)  # paper: 1260 s
    assert stage18_summary()["ideal_makespan_32"] == ideal


def test_stage18_stage_lists_align():
    stages = stage18_stage_lists()
    assert [len(s) for s in stages] == list(STAGE_TASK_COUNTS)
    assert stages[7][0].duration == 120


# ---------------------------------------------------------------- fMRI
def test_fmri_task_counts_match_paper_endpoints():
    # "from 120 volumes (480 tasks ...) to 480 volumes (1960 tasks)"
    assert fmri_task_count(120) == 480
    assert fmri_task_count(480) == 1960


def test_fmri_workflow_counts_and_chain():
    wf = fmri_workflow(120)
    assert len(wf) == 480
    # Each volume is a 4-chain.
    assert wf.node("fmri-v0000-realign").deps == ("fmri-v0000-reorient",)
    assert wf.node("fmri-v0000-smooth").deps == ("fmri-v0000-reslice",)
    wf.validate()


def test_fmri_group_stage_only_above_base():
    small = fmri_workflow(120)
    assert "group" not in small.stages()
    large = fmri_workflow(480)
    assert len(large.stages()["group"]) == 40


def test_fmri_durations_are_a_few_seconds():
    wf = fmri_workflow(24)
    assert all(0 < node.spec.duration <= 10 for node in wf.tasks())


def test_fmri_validation():
    with pytest.raises(ValueError):
        fmri_workflow(0)


# ---------------------------------------------------------------- Montage
def test_montage_counts_match_paper():
    wf = montage_workflow()
    stages = wf.stages()
    assert len(stages["mProject"]) == 487     # "about 487 input images"
    assert len(stages["mDiff"]) == 2200       # "2,200 overlapping sections"
    assert len(stages["mFit"]) == 2200
    assert len(stages["mBackground"]) == 487
    assert len(stages["mAdd"]) == 1           # serial final co-add
    assert list(stages) == list(MONTAGE_STAGE_ORDER)


def test_montage_dag_valid_and_deterministic():
    wf1 = montage_workflow(seed=5)
    wf2 = montage_workflow(seed=5)
    deps1 = {n.task_id: n.deps for n in wf1.tasks()}
    deps2 = {n.task_id: n.deps for n in wf2.tasks()}
    assert deps1 == deps2
    wf1.validate()


def test_montage_diff_depends_on_two_projections():
    wf = montage_workflow()
    node = wf.node("mDiff-00000")
    projections = [d for d in node.deps if d.startswith("mProject")]
    assert len(projections) == 2
    assert projections[0] != projections[1]


def test_montage_shape_validation():
    with pytest.raises(ValueError):
        MontageShape(images=0)


def test_montage_final_add_is_single_long_task():
    wf = montage_workflow()
    final = wf.node("mAdd-0000")
    durations = [n.spec.duration for n in wf.tasks()]
    assert final.spec.duration == max(durations)


# ---------------------------------------------------------------- Table 5
def test_table5_has_twelve_rows():
    assert len(SWIFT_APPLICATIONS) == 12
    names = [app.name for app in SWIFT_APPLICATIONS]
    assert any("ATLAS" in n for n in names)
    assert any("MolDyn" in n for n in names)


def test_table5_representative_workload_shape():
    app = next(a for a in SWIFT_APPLICATIONS if "GADU" in a.name)
    stages = app.representative_workload(scale=0.01)
    assert len(stages) == 4  # GADU: 4 stages
    total = sum(len(s) for s in stages)
    assert total == pytest.approx(400, rel=0.1)


def test_table5_scale_validation():
    with pytest.raises(ValueError):
        SWIFT_APPLICATIONS[0].representative_workload(scale=0)
