"""The cost models must match the paper's measured anchor points."""

import pytest

from repro.config import SecurityMode
from repro.net import BundlingCostModel, NetworkModel, WSCostModel


@pytest.fixture
def ws():
    return WSCostModel()


@pytest.fixture
def bundling():
    return BundlingCostModel()


def test_peak_dispatch_rate_matches_487(ws):
    assert ws.peak_dispatch_rate(SecurityMode.NONE) == pytest.approx(487.0)


def test_secure_dispatch_rate_matches_204(ws):
    assert ws.peak_dispatch_rate(SecurityMode.GSI_SECURE_CONVERSATION) == pytest.approx(204.0)


def test_single_executor_rates_match_28_and_12(ws):
    assert ws.executor_rate(SecurityMode.NONE) == pytest.approx(28.0)
    assert ws.executor_rate(SecurityMode.GSI_SECURE_CONVERSATION) == pytest.approx(12.0)


def test_gt4_bare_ws_bound_is_500(ws):
    assert 1.0 / ws.base_call_cpu == pytest.approx(500.0)


def test_security_factor(ws):
    assert ws.security_factor(SecurityMode.NONE) == 1.0
    assert ws.security_factor(SecurityMode.GSI_SECURE_CONVERSATION) > 2.0


def test_unbundled_throughput_near_20(bundling):
    assert bundling.throughput(1) == pytest.approx(20.0, rel=0.05)


def test_peak_bundle_size_near_300(bundling):
    assert bundling.peak_bundle_size == pytest.approx(300.0, rel=0.01)


def test_peak_throughput_near_1500(bundling):
    assert bundling.throughput(300) == pytest.approx(1500.0, rel=0.02)


def test_throughput_degrades_past_peak(bundling):
    assert bundling.throughput(1000) < bundling.throughput(300)
    assert bundling.throughput(600) < bundling.throughput(300)


def test_throughput_increases_up_to_peak(bundling):
    rates = [bundling.throughput(b) for b in (1, 10, 50, 100, 200, 300)]
    assert rates == sorted(rates)


def test_call_cost_positive_and_monotonic(bundling):
    costs = [bundling.call_cost(b) for b in range(1, 500, 50)]
    assert all(c > 0 for c in costs)
    assert costs == sorted(costs)


def test_call_cost_rejects_nonpositive(bundling):
    with pytest.raises(ValueError):
        bundling.call_cost(0)


def test_network_transfer_time():
    net = NetworkModel(latency=0.001, bandwidth_bps=1e9)
    assert net.transfer_time(0) == pytest.approx(0.001)
    # 1 MB over 1 Gb/s = 8 ms + 1 ms latency.
    assert net.transfer_time(10**6) == pytest.approx(0.009)
    assert net.round_trip(0) == pytest.approx(0.002)
    with pytest.raises(ValueError):
        net.transfer_time(-1)


def test_default_network_latency_in_paper_range():
    net = NetworkModel()
    assert 0.001 <= net.latency <= 0.002
