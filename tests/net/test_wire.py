"""Unit and property tests for the wire codec and message vocabulary."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError, SecurityError
from repro.net import (
    FrameReader,
    Message,
    MessageType,
    decode_frame,
    encode_frame,
    sign_payload,
    verify_payload,
)

KEY = b"shared-secret"

json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-(2**31), 2**31) | st.text(max_size=30),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=20,
)


def test_roundtrip_plain():
    payload = {"type": "submit", "tasks": [1, 2, 3]}
    assert decode_frame(encode_frame(payload)) == payload


def test_roundtrip_signed():
    payload = {"hello": "world"}
    frame = encode_frame(payload, key=KEY)
    assert decode_frame(frame, key=KEY) == payload


def test_tampered_signed_frame_rejected():
    frame = bytearray(encode_frame({"amount": 1}, key=KEY))
    # Flip a byte inside the JSON body (after the 4-byte length prefix).
    frame[-2] ^= 0x01
    with pytest.raises((SecurityError, ProtocolError)):
        decode_frame(bytes(frame), key=KEY)


def test_signed_frame_read_without_key_exposes_envelope():
    frame = encode_frame({"x": 1}, key=KEY)
    envelope = decode_frame(frame)  # no key: envelope visible, body intact
    assert verify_payload(envelope, KEY) == {"x": 1}


def test_wrong_key_rejected():
    frame = encode_frame({"x": 1}, key=KEY)
    with pytest.raises(SecurityError):
        decode_frame(frame, key=b"other-key")


def test_missing_envelope_rejected():
    with pytest.raises(SecurityError):
        verify_payload({"body": 1}, KEY)
    with pytest.raises(SecurityError):
        verify_payload("not-a-dict", KEY)


def test_sign_payload_is_deterministic_and_order_insensitive():
    assert sign_payload({"a": 1, "b": 2}, KEY) == sign_payload({"b": 2, "a": 1}, KEY)


def test_frame_reader_handles_fragmentation():
    payloads = [{"n": i} for i in range(5)]
    stream = b"".join(encode_frame(p) for p in payloads)
    reader = FrameReader()
    got = []
    # Feed one byte at a time: worst-case TCP fragmentation.
    for i in range(len(stream)):
        got.extend(reader.feed(stream[i : i + 1]))
    assert got == payloads
    assert reader.pending_bytes == 0


def test_frame_reader_handles_coalescing():
    payloads = [{"n": i} for i in range(10)]
    stream = b"".join(encode_frame(p) for p in payloads)
    reader = FrameReader()
    assert list(reader.feed(stream)) == payloads


def test_frame_reader_rejects_oversized_header():
    import struct

    reader = FrameReader()
    with pytest.raises(ProtocolError):
        list(reader.feed(struct.pack(">I", 2**31)))


def test_frame_reader_oversized_frame_does_not_poison_stream():
    import struct

    from repro.net.wire import MAX_FRAME_BYTES

    before = encode_frame({"n": "before"})
    oversized_len = MAX_FRAME_BYTES + 1
    after = encode_frame({"n": "after"})
    reader = FrameReader()
    assert list(reader.feed(before)) == [{"n": "before"}]
    with pytest.raises(ProtocolError):
        list(reader.feed(struct.pack(">I", oversized_len)))
    # Stream the advertised-but-bogus body in chunks, with the next
    # good frame appended mid-way: the reader must discard exactly the
    # oversized body, then resynchronise and parse the good frame.
    junk = b"x" * oversized_len
    got = []
    got.extend(reader.feed(junk[: oversized_len // 2]))
    got.extend(reader.feed(junk[oversized_len // 2 :] + after))
    assert got == [{"n": "after"}]
    assert reader.pending_bytes == 0


def test_frame_reader_rejects_bad_json():
    import struct

    body = b"{not json"
    with pytest.raises(ProtocolError):
        list(FrameReader().feed(struct.pack(">I", len(body)) + body))


def test_decode_frame_rejects_partial():
    frame = encode_frame({"a": 1})
    with pytest.raises(ProtocolError):
        decode_frame(frame[:-1])
    with pytest.raises(ProtocolError):
        decode_frame(frame + frame)


@given(json_values)
def test_roundtrip_property_plain(payload):
    assert decode_frame(encode_frame(payload)) == payload


@given(json_values)
def test_roundtrip_property_signed(payload):
    assert decode_frame(encode_frame(payload, key=KEY), key=KEY) == payload


@given(st.lists(json_values, min_size=1, max_size=8), st.integers(1, 64))
def test_fragmented_stream_property(payloads, chunk):
    stream = b"".join(encode_frame(p) for p in payloads)
    reader = FrameReader()
    got = []
    for i in range(0, len(stream), chunk):
        got.extend(reader.feed(stream[i : i + chunk]))
    assert got == payloads


def test_message_roundtrip():
    msg = Message(MessageType.SUBMIT, sender="client-1", payload={"tasks": []})
    parsed = Message.from_dict(msg.to_dict())
    assert parsed.type is MessageType.SUBMIT
    assert parsed.sender == "client-1"
    assert parsed.msg_id == msg.msg_id


def test_message_ids_increase():
    a = Message(MessageType.NOTIFY)
    b = Message(MessageType.NOTIFY)
    assert b.msg_id > a.msg_id


def test_message_from_dict_rejects_unknown_type():
    with pytest.raises(ValueError):
        Message.from_dict({"type": "bogus"})
