"""CLI tests (direct invocation of repro.cli.main)."""

import os

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "falkon-repro" in out
    assert "repro.core" in out


def test_throughput_small(capsys):
    assert main(["throughput", "--executors", "8", "--tasks", "300"]) == 0
    out = capsys.readouterr().out
    assert "tasks/s" in out


def test_throughput_secure(capsys):
    assert main(["throughput", "--executors", "8", "--tasks", "200", "--security"]) == 0
    assert "(secure)" in capsys.readouterr().out


@pytest.mark.parametrize("name", ["18stage", "fmri", "montage", "trace"])
def test_workload_descriptions(name, capsys):
    assert main(["workload", name]) == 0
    out = capsys.readouterr().out
    assert "total" in out or "tasks" in out


def test_provision_small(capsys):
    assert main(["provision", "--idle", "120", "--max-executors", "8"]) == 0
    out = capsys.readouterr().out
    assert "resource utilization" in out
    assert "resource allocations" in out


def test_live_small(capsys):
    assert main(["live", "--executors", "2", "--tasks", "50"]) == 0
    out = capsys.readouterr().out
    assert "50/50 tasks ok" in out


def test_export_writes_files(tmp_path, capsys, monkeypatch):
    # Patch the heavyweight exporters to keep this a unit test.
    import repro.experiments.export as export_mod

    def tiny_fig8(directory, result=None, n_tasks=0):
        return [export_mod.write_csv(os.path.join(directory, "fig8.csv"), ["a"], [(1,)])]

    def tiny_fig9(directory, result=None, executors=0):
        return [export_mod.write_csv(os.path.join(directory, "fig9.csv"), ["a"], [(1,)])]

    monkeypatch.setattr(export_mod, "export_fig8", tiny_fig8)
    monkeypatch.setattr(export_mod, "export_fig9", tiny_fig9)
    monkeypatch.setattr(
        export_mod, "export_fig6",
        lambda d, result=None: export_mod.write_csv(
            os.path.join(d, "fig6.csv"), ["a"], [(1,)]
        ),
    )

    out_dir = str(tmp_path / "results")
    assert main(["export", "--out", out_dir, "--quick"]) == 0
    written = os.listdir(out_dir)
    assert "fig3_throughput.csv" in written
    assert "table4_utilization.csv" in written
    assert "fig14_fmri.csv" in written


@pytest.mark.parametrize("name", ["fig5", "fig11"])
def test_figure_fast_variants(name, capsys):
    assert main(["figure", name]) == 0
    out = capsys.readouterr().out
    assert "==" in out and "|" in out  # a rendered canvas


def test_figure_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])
