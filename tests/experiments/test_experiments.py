"""Reduced-scale sanity tests for the experiment harnesses.

Full-scale paper-vs-measured validation lives in benchmarks/; these
tests exercise every experiment module quickly so `pytest tests/`
covers the whole repository.
"""

import pytest

from repro.experiments import (
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fmri,
    run_montage,
    run_table2,
    run_threetier,
)
from repro.experiments.ablations import (
    run_datacache_ablation,
    run_prefetch_ablation,
)
from repro.experiments.fig9_scale import RAMP_DISPATCH_RATE


def test_fig3_small_sweep():
    result = run_fig3(executor_counts=(1, 4, 32), tasks_per_executor=30)
    assert [row.executors for row in result.rows] == [1, 4, 32]
    assert result.at(1).throughput_none == pytest.approx(28.0, rel=0.1)
    assert result.at(4).throughput_none == pytest.approx(4 * 28.0, rel=0.1)
    assert result.at(32).throughput_gsi < result.at(32).throughput_none
    assert all(row.gt4_bound == 500.0 for row in result.rows)


def test_fig4_small_sweep():
    result = run_fig4(sizes=(1, 10**6), executors=16)
    assert len(result.points) == 8  # 4 configs x 2 sizes
    tiny = {p.config: p.tasks_per_sec for p in result.points if p.data_bytes == 1}
    # Write-op ceiling binds even at 16 executors... it is global.
    assert tiny["GPFS read+write"] <= 160
    assert tiny["GPFS read"] > tiny["GPFS read+write"]


def test_fig5_model_sim_agreement():
    result = run_fig5(bundle_sizes=(1, 100, 300), n_tasks=600)
    for row in result.rows:
        assert row.simulated_tasks_per_sec == pytest.approx(
            row.model_tasks_per_sec, rel=0.12
        )
    assert result.peak_row().bundle_size == 300


def test_fig6_small_sweep():
    result = run_fig6(task_lengths=(1.0,), executor_counts=(1, 8), tasks_per_run=256)
    assert result.at(1.0, 1).efficiency == pytest.approx(1.0)
    assert result.at(1.0, 8).efficiency > 0.9


def test_fig7_small_sweep():
    result = run_fig7(task_lengths=(1.0, 256.0))
    row1, row256 = result.at(1.0), result.at(256.0)
    assert row1.falkon > 0.8
    assert row1.pbs < 0.01
    assert row256.pbs > row1.pbs
    assert row1.condor_693_derived == pytest.approx(1 / (1 + 0.0909 * 64), rel=0.01)


def test_fig8_reduced_scale():
    result = run_fig8(n_tasks=30_000)
    assert result.n_tasks == 30_000
    assert 250 < result.average_throughput < 460
    assert result.queue_peak > 10_000
    assert len(result.raw_samples) > 10
    with pytest.raises(ValueError):
        run_fig8(n_tasks=0)


def test_fig9_reduced_scale():
    result = run_fig9(executors=1000)
    assert result.busy_series.max() == 1000
    assert result.ramp_seconds == pytest.approx(1000 / RAMP_DISPATCH_RATE, rel=0.25)
    assert len(result.overheads_ms) == 1000
    assert result.overhead_quantile_ms(0.5) < 250


def test_table2_measured_rows():
    rows = run_table2()
    by_name = {r.system: r for r in rows}
    assert by_name["PBS (v2.1.8)"].measured_tasks_per_sec == pytest.approx(0.45, rel=0.1)
    assert by_name["BOINC [19,20]"].measured_tasks_per_sec is None


def test_fmri_single_size():
    (row,) = run_fmri(volumes=(120,))
    assert row.tasks == 480
    assert row.gram4_seconds > row.clustered_seconds > row.falkon_seconds


def test_montage_shape_quick():
    from repro.workloads.montage import MontageShape

    small = MontageShape(images=40, overlaps=100, tiles=10)
    result = run_montage(small)
    falkon = result.total("Falkon")
    assert falkon > 0
    assert result.total("GRAM4+PBS clustered") > falkon
    # MPI parallelises the final co-add; Falkon cannot.
    assert result.stage_times["Falkon"]["mAdd"] > result.stage_times["MPI"]["mAdd"]


def test_threetier_scaling_quick():
    rows = run_threetier(dispatcher_counts=(1, 2), tasks_per_dispatcher=1500)
    assert rows[1].throughput > 1.6 * rows[0].throughput


def test_prefetch_ablation_quick():
    rows = run_prefetch_ablation(task_lengths=(0.0, 1.0), n_executors=4, n_tasks=100)
    assert rows[0].improvement > rows[1].improvement


def test_datacache_ablation_quick():
    result = run_datacache_ablation(n_tasks=48, n_files=4, n_executors=4)
    assert result.speedup > 1.0
    assert 0.0 < result.cache_hit_rate <= 1.0
