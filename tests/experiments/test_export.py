"""Tests for the CSV export harness."""

import csv
import os

from repro.experiments.export import (
    export_fig3,
    export_fig5,
    export_fmri,
    export_montage,
    export_tables34,
    write_csv,
    write_series,
)
from repro.sim import TimeSeries


def read_csv(path):
    with open(path) as handle:
        return list(csv.reader(handle))


def test_write_csv_creates_dirs(tmp_path):
    path = write_csv(str(tmp_path / "a" / "b.csv"), ["x", "y"], [(1, 2), (3, 4)])
    rows = read_csv(path)
    assert rows == [["x", "y"], ["1", "2"], ["3", "4"]]


def test_write_series(tmp_path):
    series = TimeSeries("s")
    series.record(0.0, 10.0)
    series.record(1.0, 20.0)
    path = write_series(str(tmp_path / "s.csv"), series, "queue")
    rows = read_csv(path)
    assert rows[0] == ["time_s", "queue"]
    assert len(rows) == 3


def test_export_fig3_with_precomputed(tmp_path):
    from repro.experiments import run_fig3

    result = run_fig3(executor_counts=(1, 8), tasks_per_executor=25)
    path = export_fig3(str(tmp_path), result=result)
    rows = read_csv(path)
    assert rows[0][0] == "executors"
    assert len(rows) == 3  # header + 2 rows


def test_export_fig5(tmp_path):
    from repro.experiments import run_fig5

    result = run_fig5(bundle_sizes=(1, 300), n_tasks=600)
    path = export_fig5(str(tmp_path), result=result)
    assert len(read_csv(path)) == 3


def test_export_fmri_and_montage(tmp_path):
    from repro.experiments import run_fmri, run_montage
    from repro.workloads.montage import MontageShape

    fmri_rows = run_fmri(volumes=(120,))
    path = export_fmri(str(tmp_path), rows=fmri_rows)
    assert len(read_csv(path)) == 2

    montage = run_montage(MontageShape(images=30, overlaps=60, tiles=6))
    path = export_montage(str(tmp_path), result=montage)
    rows = read_csv(path)
    assert rows[0][0] == "stage"
    assert len(rows) == 9  # header + 8 stages


def test_export_tables34_with_precomputed(tmp_path):
    from repro.experiments import run_provisioning

    outcomes = run_provisioning(configs=("Falkon-60",))
    paths = export_tables34(str(tmp_path), outcomes=outcomes)
    names = {os.path.basename(p) for p in paths}
    assert "table3_queue_exec_times.csv" in names
    assert "table4_utilization.csv" in names
    table4 = read_csv(os.path.join(str(tmp_path), "table4_utilization.csv"))
    assert table4[0] == [
        "config", "time_to_complete_s", "utilization", "exec_efficiency", "allocations"
    ]
