"""Unit tests for the §4.6 experiment's derived quantities."""

import pytest

from repro.experiments.provisioning import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    PROVISIONING_CONFIGS,
    USED_CPU_SECONDS,
    ideal_outcome,
)
from repro.workloads.stages18 import ideal_makespan_sequential


def test_used_cpu_seconds_is_the_paper_total():
    assert USED_CPU_SECONDS == 17820.0


def test_ideal_outcome_matches_paper_ideal_column():
    ideal = ideal_outcome()
    # Paper's ideal column: 42.2 s queue, 17.8 s exec, 29.7 %, 1260 s.
    assert ideal.mean_queue_time == pytest.approx(42.2, rel=0.07)
    assert ideal.mean_execution_time == pytest.approx(17.8, abs=0.1)
    assert ideal.execution_fraction == pytest.approx(0.297, abs=0.02)
    assert ideal.makespan == pytest.approx(1260.0, rel=0.03)
    assert ideal.utilization == 1.0
    assert ideal.allocations == 0


def test_ideal_queue_time_comes_from_wave_structure():
    # With unbounded machines there is no waiting at all.
    huge = ideal_outcome(machines=1000)
    assert huge.mean_queue_time == 0.0
    # Fewer machines wait longer.
    narrow = ideal_outcome(machines=8)
    assert narrow.mean_queue_time > ideal_outcome(machines=32).mean_queue_time


def test_ideal_makespan_monotone_in_machines():
    values = [ideal_makespan_sequential(m) for m in (8, 16, 32, 64)]
    assert values == sorted(values, reverse=True)


def test_paper_tables_cover_all_configs():
    for label in PROVISIONING_CONFIGS:
        assert label in PAPER_TABLE3
        assert label in PAPER_TABLE4
    assert "Ideal" in PAPER_TABLE3 and "Ideal" in PAPER_TABLE4


def test_paper_table_values_are_as_printed():
    assert PAPER_TABLE3["GRAM4+PBS"] == (611.1, 56.5, 0.085)
    assert PAPER_TABLE4["Falkon-15"] == (1754.0, 0.89, 0.72, 11)
    assert PAPER_TABLE4["Falkon-inf"][3] == 0


def test_unknown_config_rejected():
    from repro.experiments.provisioning import run_provisioning

    with pytest.raises(ValueError):
        run_provisioning(configs=("Falkon-bogus-policy",))
