"""Unit tests for the dispatcher's write-ahead journal.

Codec round-trips, torn-tail truncation, group commit, compaction,
and the replay fold (:class:`RecoveredState`) — everything that must
hold for restart recovery to be trustworthy, tested without sockets.
"""

import json
import os
import zlib

import pytest

from repro.live.journal import (
    Journal,
    RESULT_DEFAULTS,
    SPEC_DEFAULTS,
    RecoveredState,
    RecoveredTask,
    journal_line,
    parse_journal_line,
    read_journal_tail,
    recover,
    strip_defaults,
)

from tests.live.util import wait_until


# -- codec ---------------------------------------------------------------------
def test_single_record_round_trip():
    record = {"k": "submit", "id": "t-1", "spec": {"command": "sleep"}}
    line = journal_line(record)
    assert parse_journal_line(line) == [record]


def test_batch_line_round_trip():
    batch = [{"k": "submit", "id": f"t-{i}"} for i in range(5)]
    line = journal_line(batch)
    assert parse_journal_line(line) == batch


def test_corrupt_crc_rejected():
    line = journal_line({"k": "submit", "id": "t-1"})
    flipped = ("0" if line[0] != "0" else "1") + line[1:]
    assert parse_journal_line(flipped) is None


def test_corrupt_body_rejected():
    line = journal_line({"k": "submit", "id": "t-1"})
    assert parse_journal_line(line[:-2] + "xx") is None


def test_garbage_lines_rejected():
    assert parse_journal_line("") is None
    assert parse_journal_line("not a journal line") is None
    assert parse_journal_line("zzzzzzzz {}") is None
    # valid CRC over a non-dict body must also be refused
    body = json.dumps(["not", "records"])
    crc = zlib.crc32(body.encode()) & 0xFFFFFFFF
    assert parse_journal_line(f"{crc:08x} {body}") is None


def test_torn_tail_truncates_at_first_bad_line(tmp_path):
    path = tmp_path / "journal.jsonl"
    good = [journal_line({"k": "submit", "id": f"t-{i}"}) for i in range(3)]
    torn = journal_line({"k": "submit", "id": "t-torn"})[:-7]  # mid-write death
    after = journal_line({"k": "submit", "id": "t-after"})
    path.write_text("\n".join(good + [torn, after]) + "\n")
    records, truncated = read_journal_tail(path)
    assert [r["id"] for r in records] == ["t-0", "t-1", "t-2"]
    assert truncated == 2  # the torn line and everything after it


def test_missing_tail_is_empty():
    records, truncated = read_journal_tail("/nonexistent/journal.jsonl")
    assert records == [] and truncated == 0


def test_strip_defaults_round_trips_through_parsers():
    from repro.live.protocol import (
        result_from_dict,
        result_to_dict,
        task_from_dict,
        task_to_dict,
    )
    from repro.types import TaskResult, TaskSpec

    spec = TaskSpec.sleep(0, task_id="t-1")
    stripped = strip_defaults(task_to_dict(spec), SPEC_DEFAULTS)
    assert set(stripped) == {"task_id", "command", "args"}
    assert task_from_dict(stripped) == spec

    result = TaskResult(task_id="t-1", executor_id="e-1")
    stripped = strip_defaults(result_to_dict(result), RESULT_DEFAULTS)
    assert set(stripped) == {"task_id", "executor_id"}
    assert result_from_dict(stripped) == result


# -- the journal ---------------------------------------------------------------
def test_commit_makes_appends_durable(tmp_path):
    with Journal(tmp_path) as journal:
        journal.append("submit", "t-1", spec={"command": "sleep"}, client="c-1")
        journal.append("dispatch", "t-1", attempt=1, executor="e-1")
        assert journal.commit()
        records, truncated = read_journal_tail(tmp_path / "journal.jsonl")
        assert [r["k"] for r in records] == ["submit", "dispatch"]
        assert truncated == 0


def test_append_many_single_commit(tmp_path):
    with Journal(tmp_path) as journal:
        journal.append_many(
            [{"k": "submit", "id": f"t-{i}", "client": "c-1"} for i in range(50)]
        )
        assert journal.commit()
        assert journal.stats()["records"] == 50
    records, _ = read_journal_tail(tmp_path / "journal.jsonl")
    assert len(records) == 50


def test_window_flush_without_commit(tmp_path):
    journal = Journal(tmp_path, flush_window=0.01)
    try:
        journal.append("submit", "t-1")
        assert wait_until(lambda: journal.stats()["pending"] == 0, timeout=5.0)
        records, _ = read_journal_tail(tmp_path / "journal.jsonl")
        assert [r["id"] for r in records] == ["t-1"]
    finally:
        journal.close()


def test_close_flushes_remaining(tmp_path):
    journal = Journal(tmp_path)
    journal.append("submit", "t-1")
    journal.close()
    records, _ = read_journal_tail(tmp_path / "journal.jsonl")
    assert [r["id"] for r in records] == ["t-1"]
    assert journal.commit() is False  # closed journals refuse barriers


def test_abandon_drops_buffered_window(tmp_path):
    journal = Journal(tmp_path, flush_window=30.0)  # nothing flushes on its own
    journal.append("submit", "t-durable")
    assert journal.commit()
    journal.append("submit", "t-volatile")
    journal.abandon()  # simulated kill -9: the un-fsynced window is lost
    records, _ = read_journal_tail(tmp_path / "journal.jsonl")
    assert [r["id"] for r in records] == ["t-durable"]


def test_reopen_existing_tail_appends(tmp_path):
    with Journal(tmp_path) as journal:
        journal.append("submit", "t-1")
        journal.commit()
    with Journal(tmp_path) as journal:
        assert journal.tail_records == 1
        journal.append("submit", "t-2")
        journal.commit()
    records, _ = read_journal_tail(tmp_path / "journal.jsonl")
    assert [r["id"] for r in records] == ["t-1", "t-2"]


def test_compaction_snapshots_and_truncates(tmp_path):
    journal = Journal(tmp_path, compact_every=5)
    try:
        for i in range(6):
            journal.append("submit", f"t-{i}", spec={"command": "sleep"}, client="c")
        journal.commit()
        assert journal.should_compact()
        journal.compact()  # folds the tail's own records into the snapshot
        assert journal.tail_records == 0
        assert not journal.should_compact()
        assert not os.path.exists(tmp_path / "journal.jsonl.compacting")
        # post-compaction records land in the fresh tail
        journal.append("result", "t-0", outcome="ok", result={})
        journal.commit()
    finally:
        journal.close()
    state = recover(tmp_path)
    assert state.from_snapshot
    assert len(state.tasks) == 6
    assert state.tasks["t-0"].state == "completed"
    assert state.replayed == 1  # only the post-snapshot record


def test_compaction_never_loses_committed_records(tmp_path):
    """Appends racing a compaction land in the rotated segment or the
    fresh tail — never in a file the compaction destroys.  Every record
    whose commit() returned True must survive recovery."""
    import threading

    journal = Journal(tmp_path, flush_window=0.001, compact_every=1)
    committed = []

    def churn():
        for i in range(120):
            task_id = f"t-{i:04d}"
            journal.append("submit", task_id,
                           spec={"command": "sleep"}, client="c")
            if journal.commit(timeout=10.0):
                committed.append(task_id)

    thread = threading.Thread(target=churn)
    thread.start()
    while thread.is_alive():
        journal.compact()
    thread.join()
    journal.close()
    state = recover(tmp_path)
    assert len(committed) == 120
    missing = [t for t in committed if t not in state.tasks]
    assert missing == []


def test_recover_reads_interrupted_compaction_segment(tmp_path):
    """Crash between the tail rotation and the snapshot swap: the
    rotated segment holds records absent from both snapshot and tail,
    and recovery must replay it between the two."""
    snap_task = RecoveredTask(task_id="t-snap", spec={"command": "sleep"},
                              client_id="c")
    (tmp_path / "snapshot.json").write_text(
        json.dumps({"version": 1, "tasks": [snap_task.to_dict()]}))
    (tmp_path / "journal.jsonl.compacting").write_text(
        journal_line({"k": "submit", "id": "t-rot",
                      "spec": {"command": "sleep"}, "client": "c"}) + "\n")
    (tmp_path / "journal.jsonl").write_text(
        journal_line({"k": "submit", "id": "t-tail",
                      "spec": {"command": "sleep"}, "client": "c"}) + "\n")
    state = recover(tmp_path)
    assert set(state.tasks) == {"t-snap", "t-rot", "t-tail"}

    # Opening a Journal over the directory completes the interrupted
    # compaction: the segment folds into the snapshot and disappears,
    # with nothing lost.
    with Journal(tmp_path) as journal:
        assert not os.path.exists(tmp_path / "journal.jsonl.compacting")
        assert journal.tail_records == 1  # t-tail only
    state = recover(tmp_path)
    assert set(state.tasks) == {"t-snap", "t-rot", "t-tail"}


def test_recover_converges_when_segment_already_folded(tmp_path):
    """Crash between the snapshot swap and the segment unlink: the
    segment's records are replayed once more on top of a snapshot that
    already folds them, and the state converges."""
    records = [
        {"k": "submit", "id": "t-1", "spec": {"command": "sleep"}, "client": "c"},
        {"k": "dispatch", "id": "t-1", "attempt": 1, "executor": "e-1"},
        {"k": "result", "id": "t-1", "outcome": "ok", "result": {}},
    ]
    folded = RecoveredState()
    for record in records:
        folded.apply(record)
    (tmp_path / "snapshot.json").write_text(json.dumps(
        {"version": 1, "tasks": [t.to_dict() for t in folded.tasks.values()]}))
    (tmp_path / "journal.jsonl.compacting").write_text(
        "\n".join(journal_line(r) for r in records) + "\n")
    state = recover(tmp_path)
    task = state.tasks["t-1"]
    assert task.state == "completed" and task.attempts == 1
    assert state.pending() == []


def test_fsync_failure_fails_journal_and_commit(tmp_path, monkeypatch):
    """A write/fsync error must fail the journal loudly: commit()
    returns False at once (no 5 s stall per call) and later appends are
    dropped instead of accumulating in a buffer that can never drain."""
    journal = Journal(tmp_path, flush_window=0.001)
    try:
        monkeypatch.setattr("repro.live.journal.os.fsync",
                            lambda fd: (_ for _ in ()).throw(OSError("disk gone")))
        journal.append("submit", "t-1")
        assert journal.commit(timeout=5.0) is False
        assert journal.failed
        assert journal.stats()["failed"] == 1
        before = journal.stats()["records"]
        journal.append("submit", "t-2")  # dropped: the journal is dead
        assert journal.stats()["records"] == before
        assert journal.commit(timeout=5.0) is False  # immediate, no stall
    finally:
        monkeypatch.undo()
        journal.close()


# -- replay fold ---------------------------------------------------------------
def _submit(task_id, **extra):
    return {"k": "submit", "id": task_id, "spec": {"command": "sleep"},
            "client": "c-1", **extra}


def test_apply_full_lifecycle():
    state = RecoveredState()
    for record in [
        _submit("t-1"),
        {"k": "dispatch", "id": "t-1", "attempt": 1, "executor": "e-1"},
        {"k": "result", "id": "t-1", "outcome": "ok", "result": {"return_code": 0}},
        {"k": "acked", "id": "", "ids": ["t-1"]},
    ]:
        state.apply(record)
    task = state.tasks["t-1"]
    assert task.state == "completed" and task.acked and task.terminal
    assert task.result["task_id"] == "t-1"  # record id restored into the dict
    assert state.pending() == []


def test_apply_submit_is_idempotent():
    state = RecoveredState()
    state.apply(_submit("t-1"))
    state.apply({"k": "dispatch", "id": "t-1", "attempt": 1, "executor": "e-1"})
    state.apply(_submit("t-1"))  # client resubmission after a lost ack
    assert state.tasks["t-1"].state == "dispatched"


def test_apply_ignores_transitions_for_unknown_tasks():
    state = RecoveredState()
    state.apply({"k": "dispatch", "id": "t-ghost", "attempt": 1, "executor": "e-1"})
    state.apply({"k": "result", "id": "t-ghost", "outcome": "ok", "result": {}})
    assert state.tasks == {}


def test_apply_terminal_blocks_stale_transitions():
    state = RecoveredState()
    state.apply(_submit("t-1"))
    state.apply({"k": "result", "id": "t-1", "outcome": "ok", "result": {}})
    state.apply({"k": "dispatch", "id": "t-1", "attempt": 2, "executor": "e-2"})
    state.apply({"k": "requeue", "id": "t-1", "attempt": 2})
    assert state.tasks["t-1"].state == "completed"


def test_apply_requeue_returns_to_pending():
    state = RecoveredState()
    state.apply(_submit("t-1"))
    state.apply({"k": "dispatch", "id": "t-1", "attempt": 1, "executor": "e-1"})
    state.apply({"k": "requeue", "id": "t-1", "attempt": 1})
    task = state.tasks["t-1"]
    assert task.state == "queued" and task.executor_id == ""
    assert [t.task_id for t in state.pending()] == ["t-1"]


def test_apply_dlq_and_dlq_retry():
    state = RecoveredState()
    state.apply(_submit("t-1"))
    state.apply({"k": "result", "id": "t-1", "outcome": "fail",
                 "result": {"return_code": 1}})
    state.apply({"k": "dlq", "id": "t-1", "error": "poison"})
    task = state.tasks["t-1"]
    assert task.in_dlq and task.state == "failed" and task.dlq_error == "poison"
    state.apply({"k": "dlq-retry", "id": "t-1"})
    assert not task.in_dlq
    assert task.state == "queued" and task.attempts == 0
    assert task.result is None and not task.acked


def test_spec_task_id_restored_on_replay():
    state = RecoveredState()
    state.apply({"k": "submit", "id": "t-1", "spec": {"command": "sleep"},
                 "client": "c-1"})
    assert state.tasks["t-1"].spec["task_id"] == "t-1"


def test_recover_torn_tail_end_to_end(tmp_path):
    lines = [
        journal_line([_submit("t-1"), _submit("t-2")]),
        journal_line({"k": "result", "id": "t-1", "outcome": "ok", "result": {}}),
        journal_line({"k": "result", "id": "t-2", "outcome": "ok", "result": {}})[:-9],
    ]
    (tmp_path / "journal.jsonl").write_text("\n".join(lines) + "\n")
    state = recover(tmp_path)
    assert state.truncated == 1
    assert state.tasks["t-1"].terminal
    assert not state.tasks["t-2"].terminal  # its settle was in the torn line
    assert [t.task_id for t in state.pending()] == ["t-2"]


def test_journal_validation():
    with pytest.raises(ValueError):
        Journal("/tmp/x", flush_window=0)
    with pytest.raises(ValueError):
        Journal("/tmp/x", compact_every=0)


def test_recovered_task_dict_round_trip():
    task = RecoveredTask(
        task_id="t-1", spec={"command": "sleep"}, client_id="c-1",
        state="dispatched", attempts=2, executor_id="e-1",
        result=None, acked=False, in_dlq=False,
    )
    assert RecoveredTask.from_dict(task.to_dict()) == task
