"""DLQ retry racing a dispatcher kill-and-recover.

An operator's ``dlq retry`` (direct API, ``POST /dlq/<id>/retry``, or
``repro dlq retry --http``) around a crash must never duplicate the
task and never lose it: after recovery the task exists exactly once —
re-queued if the retry was journalled first, still quarantined if the
crash won — and exactly one completion is ever recorded for it.
"""

import json
import urllib.error
import urllib.request

from repro.live import LiveClient, LiveDispatcher, LiveExecutor
from repro.live.journal import recover
from repro.types import TaskSpec

from tests.live.util import wait_until


def flaky_registry(healed: dict):
    """``python:flaky`` fails until ``healed['ok']`` flips true."""

    def flaky(*_args):
        if not healed.get("ok"):
            raise RuntimeError("poison until the operator intervenes")
        return "recovered"

    return {"flaky": flaky}


def quarantine_one(journal_dir: str, healed: dict, task_id: str = "race-1"):
    """Run one flaky task into the DLQ; returns the closed dispatcher's
    port with the journal holding submit → failures → dlq."""
    disp = LiveDispatcher(journal_dir=journal_dir, max_retries=1)
    executor = LiveExecutor(disp.endpoint,
                            python_registry=flaky_registry(healed)).start()
    executor.wait_registered()
    client = LiveClient(disp.endpoint)
    future = client.submit(TaskSpec(task_id=task_id, command="python:flaky"))
    result = future.result(timeout=30.0)
    assert not result.ok
    assert wait_until(
        lambda: [e["task_id"] for e in disp.dlq_list()] == [task_id],
        timeout=10.0,
    )
    executor.stop()
    client.close()
    # Pin the dlq record into the durable window: ``simulate_crash``
    # drops unflushed appends, and this race's ordering must be exact.
    assert disp.journal.commit()
    return disp


def test_retry_journalled_then_crash_task_survives_once(tmp_path):
    """Retry wins the race: ``dlq-retry`` hits the journal, then the
    dispatcher dies before the task runs.  The successor must recover
    the task exactly once, re-queued (not in the DLQ, not lost), and
    complete it exactly once."""
    healed = {"ok": False}
    journal_dir = str(tmp_path)
    disp = quarantine_one(journal_dir, healed)
    try:
        healed["ok"] = True
        assert disp.dlq_retry("race-1") is True
        # The retry is journalled (durable) but no executor is
        # attached, so the task is still queued when the process dies.
        assert disp.journal.commit()
        disp.simulate_crash()
    finally:
        disp.close()

    state = recover(journal_dir)
    assert "race-1" in state.tasks
    pending = [t.task_id for t in state.pending()]
    assert pending.count("race-1") == 1  # exactly once, not lost
    assert not state.tasks["race-1"].in_dlq

    successor = LiveDispatcher(journal_dir=journal_dir)
    executor = LiveExecutor(successor.endpoint,
                            python_registry=flaky_registry(healed)).start()
    try:
        executor.wait_registered()
        assert successor.recovered_tasks >= 1
        assert successor.dlq_list() == []
        assert wait_until(lambda: successor.stats().completed == 1, timeout=30.0)
        # No duplicate execution sneaks in afterwards.
        assert not wait_until(lambda: successor.stats().completed > 1, timeout=1.0)
        assert successor.stats().queued == 0
    finally:
        executor.stop()
        successor.close()


def test_crash_then_retry_over_http_completes_once(tmp_path):
    """Crash wins the race: the dispatcher dies with the task
    quarantined.  The successor recovers the DLQ entry intact, and an
    operator retry over ``POST /dlq/<id>/retry`` re-runs it exactly
    once."""
    healed = {"ok": False}
    journal_dir = str(tmp_path)
    disp = quarantine_one(journal_dir, healed)
    disp.simulate_crash()
    disp.close()

    successor = LiveDispatcher(journal_dir=journal_dir)
    http = successor.serve_http(port=0)
    base = f"http://127.0.0.1:{http.port}"
    executor = LiveExecutor(successor.endpoint,
                            python_registry=flaky_registry(healed)).start()
    try:
        executor.wait_registered()
        # The quarantine survived the crash — retrying is possible at all.
        assert [e["task_id"] for e in successor.dlq_list()] == ["race-1"]
        healed["ok"] = True
        request = urllib.request.Request(f"{base}/dlq/race-1/retry", method="POST")
        with urllib.request.urlopen(request, timeout=10.0) as response:
            assert json.load(response).get("requeued") is True
        assert wait_until(lambda: successor.stats().completed == 1, timeout=30.0)
        assert successor.dlq_list() == []
        # A second retry of the now-healthy task is a no-op, not a
        # duplicate submission.
        request = urllib.request.Request(f"{base}/dlq/race-1/retry", method="POST")
        try:
            with urllib.request.urlopen(request, timeout=10.0) as response:
                assert json.load(response).get("requeued") is not True
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
        assert not wait_until(lambda: successor.stats().completed > 1, timeout=1.0)
    finally:
        executor.stop()
        successor.close()


def test_crash_then_retry_via_cli(tmp_path, capsys):
    """The full operator path: ``repro dlq retry --http`` against a
    recovered dispatcher re-queues the quarantined task exactly once."""
    from repro.cli import main

    healed = {"ok": False}
    journal_dir = str(tmp_path)
    disp = quarantine_one(journal_dir, healed)
    disp.simulate_crash()
    disp.close()

    successor = LiveDispatcher(journal_dir=journal_dir)
    http = successor.serve_http(port=0)
    base = f"http://127.0.0.1:{http.port}"
    executor = LiveExecutor(successor.endpoint,
                            python_registry=flaky_registry(healed)).start()
    try:
        executor.wait_registered()
        healed["ok"] = True
        assert main(["dlq", "retry", "race-1", "--http", base]) == 0
        assert "re-queued" in capsys.readouterr().out
        assert wait_until(lambda: successor.stats().completed == 1, timeout=30.0)
        assert successor.dlq_list() == []
        # Retrying a task that is no longer quarantined fails cleanly.
        assert main(["dlq", "retry", "race-1", "--http", base]) != 0
        assert successor.stats().completed == 1
    finally:
        executor.stop()
        successor.close()
