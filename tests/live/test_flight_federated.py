"""The flight-recorder acceptance path: kill -9 a federation shard,
finish the run, and prove ``repro doctor`` can tell the story —
which shard died, what it held, and who resolved those tasks after
the restart — purely from the dumps on disk.
"""

import os

from repro.live.federation import LocalFederation
from repro.obs.doctor import analyze, render_report
from repro.obs.flight import load_flight_dumps
from repro.types import TaskSpec

from tests.live.util import wait_until


def specs(n, seconds=0.0, prefix="fl"):
    return [TaskSpec.sleep(seconds, task_id=f"{prefix}-{i:04d}")
            for i in range(n)]


class TestKillNineForensics:
    def test_doctor_reconstructs_a_shard_kill(self, tmp_path):
        flight_dir = str(tmp_path / "flight")
        with LocalFederation(shards=2, executors_per_shard=2,
                             monitor_interval=0.05,
                             journal_root=str(tmp_path / "journals"),
                             flight_dir=flight_dir) as fed:
            futures = fed.submit(specs(40, seconds=0.03, prefix="kill"))
            assert wait_until(
                lambda: sum(1 for f in futures if f.done()) >= 5,
                timeout=20.0)
            # kill -9: the shard flushes its ring (crash reason) and
            # dies without goodbyes; the router retargets its tasks.
            fed.kill_shard("s1")
            assert wait_until(lambda: all(f.done() for f in futures),
                              timeout=30.0)
            assert all(f.result(0).ok for f in futures)
            fed.restart_shard("s1")
            after = fed.run(specs(10, prefix="after"), timeout=30)
            assert all(r.ok for r in after)
            # End-of-run dumps from every live component.
            fed.dump_flight(reason="end")

        dumps = load_flight_dumps(flight_dir)
        assert dumps, "no flight dumps written"
        # Every shard dumped: the killed one at crash, both at end.
        dispatcher_shards = {d["shard_id"] for d in dumps
                             if d["component"] == "dispatcher"}
        assert dispatcher_shards == {"s0", "s1"}
        crash_dumps = [d for d in dumps if d["reason"] == "crash"]
        assert len(crash_dumps) == 1
        assert crash_dumps[0]["shard_id"] == "s1"

        report = analyze(flight_dir)
        # 1. The doctor identifies the killed shard...
        crashed = [c for c in report["crashed"] if c["reason"] == "crash"]
        assert len(crashed) == 1
        assert crashed[0]["shard_id"] == "s1"
        # 2. ...the tasks it held at death (the crash fired mid-run
        # with work outstanding, so the inventory cannot be empty)...
        open_tasks = crashed[0]["open_tasks"]
        assert open_tasks
        assert all(state in ("dispatched", "queued")
                   for state in open_tasks.values())
        # 3. ...and where those tasks settled after the failover: the
        # run finished ok, so every open task resolved in some other
        # dump (the survivor's or the restarted shard's ring).
        resolved = [r for r in report["resolutions"]
                    if r["task_id"] in open_tasks and r.get("resolved_by")]
        assert resolved, "no post-crash resolution correlated"
        for r in resolved:
            assert r["outcome"] == "ok"
            assert r["after_crash_s"] >= 0.0

        text = render_report(report)
        assert "[dispatcher[s1]] crash" in text
        assert "crashed components:" in text

    def test_federation_dump_flight_covers_executors(self, tmp_path):
        flight_dir = str(tmp_path / "flight")
        with LocalFederation(shards=2, executors_per_shard=1,
                             monitor_interval=0.05,
                             flight_dir=flight_dir) as fed:
            results = fed.run(specs(8, prefix="cov"), timeout=30)
            assert all(r.ok for r in results)
            paths = fed.dump_flight(reason="end")
        assert len(paths) == 4  # 2 dispatchers + 2 executors
        assert all(os.path.exists(p) for p in paths)
        components = {d["component"].split(":")[0]
                      for d in load_flight_dumps(flight_dir)}
        assert components == {"dispatcher", "executor"}
