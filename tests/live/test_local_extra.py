"""Additional live-plane coverage: LocalFalkon surface details."""

import pytest

from repro.live import LocalFalkon
from repro.types import TaskSpec


def test_map_shell_rejects_empty_command():
    with LocalFalkon(executors=1) as falkon:
        with pytest.raises(ValueError):
            falkon.map_shell([""])


def test_shell_tokenization_no_shell_expansion():
    # shlex splits; no shell means no glob/variable expansion.
    with LocalFalkon(executors=1) as falkon:
        result = falkon.map_shell(["echo $HOME *"])[0]
    assert result.stdout.strip() == "$HOME *"


def test_env_and_working_dir_forwarded(tmp_path):
    with LocalFalkon(executors=1) as falkon:
        spec = TaskSpec(
            task_id="envtest",
            command="python3",
            args=("-c", "import os; print(os.environ['MARKER'], os.getcwd())"),
            working_dir=str(tmp_path),
            env=(("MARKER", "falkon-env"), ("PATH", "/usr/bin:/bin")),
        )
        result = falkon.run([spec], timeout=30)[0]
    assert result.ok, result.error or result.stderr
    assert "falkon-env" in result.stdout
    assert str(tmp_path) in result.stdout


def test_results_preserve_submission_order():
    with LocalFalkon(executors=4) as falkon:
        registry_tasks = [TaskSpec.sleep(0, task_id=f"ord{i:03d}") for i in range(30)]
        results = falkon.run(registry_tasks, timeout=30)
    assert [r.task_id for r in results] == [f"ord{i:03d}" for i in range(30)]


def test_stdout_truncation_guard():
    # A 1 MB stdout is truncated to the last 64 KiB, not shipped whole.
    with LocalFalkon(executors=1) as falkon:
        spec = TaskSpec(
            task_id="big-out",
            command="python3",
            args=("-c", "print('x' * 1_000_000)"),
        )
        result = falkon.run([spec], timeout=60)[0]
    assert result.ok
    assert len(result.stdout) <= 65536


def test_context_manager_closes_everything():
    falkon = LocalFalkon(executors=2)
    falkon.run([TaskSpec.sleep(0, task_id="cm")], timeout=20)
    falkon.close()
    # Idempotent close; dispatcher socket gone.
    falkon.dispatcher.close()
    assert all(not e.running for e in falkon.executors)
