"""Failure-path tests: fault injection, liveness, reconnect, replay.

These drive exactly the paths the endurance claims rest on: executors
dying mid-task, half-open sockets that never close, lost frames, and
connection churn between a result and its acknowledgement.
"""

import socket
import time

import pytest

from repro.errors import ProtocolError, ReconnectError
from repro.live import (
    Connection,
    FaultAction,
    FaultPlan,
    FaultyConnection,
    LiveClient,
    LiveDispatcher,
    LiveExecutor,
    LocalFalkon,
)
from repro.metrics import delivery_ratio, fault_rates, liveness_summary, tasks_lost
from repro.net.message import Message, MessageType
from repro.types import TaskSpec

from tests.live.util import RawPeer, wait_until


def _socket_pair():
    server = socket.create_server(("127.0.0.1", 0))
    port = server.getsockname()[1]
    left = socket.create_connection(("127.0.0.1", port))
    right, _ = server.accept()
    server.close()
    return left, right


# ---------------------------------------------------------------- fault plan
def test_fault_plan_is_deterministic_per_seed():
    kwargs = dict(drop_rate=0.2, duplicate_rate=0.1, corrupt_rate=0.1, delay_rate=0.1)
    a = FaultPlan(seed=11, **kwargs).schedule("conn-A", 128)
    b = FaultPlan(seed=11, **kwargs).schedule("conn-A", 128)
    assert a == b
    assert any(act is not FaultAction.NONE for act in a)
    other_seed = FaultPlan(seed=12, **kwargs).schedule("conn-A", 128)
    assert a != other_seed
    other_conn = FaultPlan(seed=11, **kwargs).schedule("conn-B", 128)
    assert a != other_conn


def test_fault_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(drop_rate=0.9, corrupt_rate=0.2)
    with pytest.raises(ValueError):
        FaultPlan(drop_rate=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(delay_range=(0.5, 0.1))


def test_fault_plan_kill_schedule_overrides_rates():
    plan = FaultPlan(seed=0, kill_at={"doomed": 3})
    assert plan.decide("doomed", 2)[0] is not FaultAction.KILL
    assert plan.decide("doomed", 3)[0] is FaultAction.KILL
    assert plan.decide("other", 3)[0] is FaultAction.NONE


def test_faulty_connection_drops_frames():
    left_sock, right_sock = _socket_pair()
    received = []
    plan = FaultPlan(seed=1, drop_rate=1.0, roles=None)
    left = FaultyConnection(left_sock, handler=lambda m: None, name="L", plan=plan).start()
    right = Connection(right_sock, handler=received.append, name="R").start()
    for _ in range(5):
        left.send(Message(MessageType.NOTIFY))
    time.sleep(0.2)
    assert received == []
    assert plan.snapshot()["frames_dropped"] == 5
    left.close()
    right.close()


def test_faulty_connection_duplicates_frames():
    left_sock, right_sock = _socket_pair()
    received = []
    plan = FaultPlan(seed=1, duplicate_rate=1.0, roles=None)
    left = FaultyConnection(left_sock, handler=lambda m: None, name="L", plan=plan).start()
    right = Connection(right_sock, handler=received.append, name="R").start()
    left.send(Message(MessageType.NOTIFY, payload={"n": 7}))
    assert wait_until(lambda: len(received) == 2)
    assert all(m.payload == {"n": 7} for m in received)
    assert plan.snapshot()["frames_duplicated"] == 1
    left.close()
    right.close()


def test_faulty_connection_corruption_drops_signed_stream():
    left_sock, right_sock = _socket_pair()
    received = []
    plan = FaultPlan(seed=1, corrupt_rate=1.0, roles=None)
    left = FaultyConnection(
        left_sock, handler=lambda m: None, key=b"k", name="L", plan=plan
    ).start()
    right = Connection(right_sock, handler=received.append, key=b"k", name="R").start()
    left.send(Message(MessageType.NOTIFY))
    right.join(5.0)
    assert right.closed  # tampered frame kills the stream, never the process
    assert received == []
    assert plan.snapshot()["frames_corrupted"] == 1
    left.close()


def test_faulty_connection_kill_is_mid_message():
    left_sock, right_sock = _socket_pair()
    received = []
    plan = FaultPlan(seed=1, kill_at={"L": 1}, roles=None)
    left = FaultyConnection(left_sock, handler=lambda m: None, name="L", plan=plan).start()
    right = Connection(right_sock, handler=received.append, name="R").start()
    left.send(Message(MessageType.NOTIFY, payload={"n": 1}))  # frame 0: clean
    with pytest.raises(ProtocolError):
        left.send(Message(MessageType.NOTIFY, payload={"n": 2}))  # frame 1: killed
    assert left.closed
    right.join(5.0)
    assert right.closed  # half a frame then EOF: receiver drops cleanly
    assert [m.payload["n"] for m in received] == [1]
    assert plan.snapshot()["sockets_killed"] == 1


# ---------------------------------------------------------------- liveness
def test_heartbeat_misses_evict_half_open_executor():
    dispatcher = LiveDispatcher(
        heartbeat_interval=0.1, heartbeat_miss_budget=3, monitor_interval=0.05
    )
    try:
        zombie = RawPeer(dispatcher.address)
        zombie.register("zombie")
        assert dispatcher.stats().registered == 1
        # The socket stays open but the peer goes silent: only the
        # liveness protocol can catch this.
        assert wait_until(lambda: dispatcher.stats().registered == 0, timeout=5.0)
        assert dispatcher.stats().executors_declared_dead == 1
        zombie.close()
    finally:
        dispatcher.close()


def test_heartbeats_keep_slow_executor_alive():
    registry = {"slow": lambda: time.sleep(0.8)}
    dispatcher = LiveDispatcher(
        heartbeat_interval=0.1, heartbeat_miss_budget=3, monitor_interval=0.05
    )
    executor = LiveExecutor(
        dispatcher.endpoint, python_registry=registry, heartbeat_interval=0.1
    ).start()
    client = None
    try:
        assert executor.wait_registered()
        client = LiveClient(dispatcher.endpoint)
        # The task runs 0.8s — far past the 0.3s miss deadline; the
        # heartbeat side-thread is what distinguishes slow from dead.
        result = client.run([TaskSpec(task_id="slow-1", command="python:slow")], timeout=15)[0]
        assert result.ok
        stats = dispatcher.stats()
        assert stats.executors_declared_dead == 0
        assert stats.retries == 0
    finally:
        if client is not None:
            client.close()
        executor.stop()
        dispatcher.close()


def test_executor_killed_mid_task_is_redispatched_and_completes():
    dispatcher = LiveDispatcher(max_retries=3)
    backup = None
    client = None
    try:
        victim = RawPeer(dispatcher.address)
        victim.register("victim")
        client = LiveClient(dispatcher.endpoint)
        futures = client.submit([TaskSpec.sleep(0.0, task_id="redispatch-1")])
        # Pull the task, then die without ever answering.
        victim.recv_until(MessageType.NOTIFY)
        victim.send(Message(MessageType.GET_WORK, sender="victim"))
        work = victim.recv_until(MessageType.WORK)
        assert work.payload["task"]["task_id"] == "redispatch-1"
        victim.close()
        assert wait_until(lambda: dispatcher.stats().registered == 0, timeout=5.0)
        backup = LiveExecutor(dispatcher.endpoint).start()
        result = futures[0].result(timeout=15)
        assert result.ok
        assert result.attempts == 2
        assert result.executor_id == backup.executor_id
        assert dispatcher.stats().retries == 1
    finally:
        if client is not None:
            client.close()
        if backup is not None:
            backup.stop()
        dispatcher.close()


def test_permanent_fault_exhausts_retries_and_preserves_error():
    def boom():
        raise RuntimeError("kaboom-original-error")

    with LocalFalkon(executors=1, max_retries=2, python_registry={"boom": boom}) as falkon:
        result = falkon.run([TaskSpec(task_id="perma", command="python:boom")], timeout=20)[0]
    assert not result.ok
    assert result.attempts == 3  # 1 try + max_retries replays
    assert "kaboom-original-error" in result.error
    stats = falkon.dispatcher.stats()
    assert stats.failed == 1
    assert stats.retries == 2


def test_replay_timeout_redispatches_lost_work():
    # Drop every dispatcher->executor frame past the REGISTER_ACK on
    # the lossy session: the WORK frame for the task vanishes in
    # transit, so only the replay timer can get the task back.
    plan = FaultPlan(seed=3, drop_rate=1.0)
    dispatcher = LiveDispatcher(replay_timeout=0.4, monitor_interval=0.1, fault_plan=plan)
    client = None
    rescuer = None
    try:
        lossy = RawPeer(dispatcher.address)
        lossy.register("lossy")
        client = LiveClient(dispatcher.endpoint)
        futures = client.submit([TaskSpec.sleep(0.0, task_id="lost-work-1")])
        # Pull explicitly (the NOTIFY was dropped too): the dispatcher
        # marks the task dispatched, but the WORK frame never arrives.
        lossy.send(Message(MessageType.GET_WORK, sender="lossy"))
        assert wait_until(lambda: dispatcher.stats().retries >= 1, timeout=10.0)
        lossy.close()
        plan.drop_rate = 0.0  # the rescuer's frames get through
        rescuer = LiveExecutor(dispatcher.endpoint).start()
        result = futures[0].result(timeout=20)
        assert result.ok
        assert dispatcher.stats().frames_dropped >= 1
    finally:
        if client is not None:
            client.close()
        if rescuer is not None:
            rescuer.stop()
        dispatcher.close()


# ---------------------------------------------------------------- reconnect
def test_executor_reconnects_with_backoff_and_supersedes():
    dispatcher = LiveDispatcher()
    executor = LiveExecutor(
        dispatcher.endpoint, executor_id="phoenix", max_reconnects=5, backoff_base=0.02
    ).start()
    client = None
    try:
        assert executor.wait_registered()
        # The network "drops": the executor's socket dies under it.
        executor._conn.close()
        assert wait_until(
            lambda: executor.reconnects >= 1 and dispatcher.stats().registered == 1,
            timeout=10.0,
        )
        assert dispatcher.stats().reconnects >= 1
        client = LiveClient(dispatcher.endpoint)
        result = client.run([TaskSpec.sleep(0.0, task_id="post-reconnect")], timeout=15)[0]
        assert result.ok
        assert result.executor_id == "phoenix"
    finally:
        if client is not None:
            client.close()
        executor.stop()
        dispatcher.close()


def test_client_reconnects_resumes_instance_and_backfills():
    with LocalFalkon(executors=2) as falkon:
        client = LiveClient(falkon.dispatcher.endpoint, backoff_base=0.02)
        try:
            first = client.run([TaskSpec.sleep(0.0, task_id="pre-drop")], timeout=15)[0]
            assert first.ok
            epr_before = client.epr
            client._conn.close()  # unexpected drop, not close()
            assert wait_until(lambda: client.reconnects >= 1, timeout=10.0)
            assert client.epr == epr_before  # instance resumed, not recreated
            futures = client.submit([TaskSpec.sleep(0.0, task_id="post-drop")])
            assert futures[0].result(timeout=15).ok
            assert falkon.dispatcher.stats().reconnects >= 1
        finally:
            client.close()


def test_client_reconnect_exhaustion_fails_futures():
    dispatcher = LiveDispatcher()
    client = LiveClient(dispatcher.endpoint, max_reconnects=2, backoff_base=0.02)
    # No executors: the future stays pending when the dispatcher dies.
    futures = client.submit([TaskSpec.sleep(0.0, task_id="orphaned")])
    dispatcher.close()
    with pytest.raises(ReconnectError):
        futures[0].result(timeout=20)
    client.close()


# ---------------------------------------------------------------- bugfix
def test_ack_send_failure_does_not_charge_retry_or_attempt():
    """Regression: a connection dying between the completion frame and
    the piggy-backed ack must not burn the piggy-backed task's retry
    budget — with max_retries=0 the old accounting failed the task
    without it ever reaching an executor."""
    dispatcher = LiveDispatcher(max_retries=0)
    client = None
    rescuer = None
    try:
        worker = RawPeer(dispatcher.address)
        worker.register("fragile")
        client = LiveClient(dispatcher.endpoint)
        futures = client.submit(
            [TaskSpec.sleep(0.0, task_id="done-task"), TaskSpec.sleep(0.0, task_id="piggy-task")]
        )
        worker.recv_until(MessageType.NOTIFY)
        worker.send(Message(MessageType.GET_WORK, sender="fragile"))
        work = worker.recv_until(MessageType.WORK)
        assert work.payload["task"]["task_id"] == "done-task"

        # Make the dispatcher's ack transmission fail exactly like a
        # dead socket: close, then raise (Connection.send's contract).
        conn = dispatcher._executors["fragile"].conn
        original_send = conn.send

        def dying_send(message):
            if message.type is MessageType.RESULT_ACK:
                conn.send = original_send
                conn.close()
                raise ProtocolError("injected: connection died before ack")
            original_send(message)

        conn.send = dying_send
        worker.send(
            Message(
                MessageType.RESULT,
                sender="fragile",
                payload={
                    "result": {"task_id": "done-task", "return_code": 0},
                    "attempt": work.payload["attempt"],
                },
            )
        )
        # The completed task's notification must still reach the client.
        assert futures[0].result(timeout=10).ok
        assert wait_until(lambda: dispatcher.stats().registered == 0, timeout=5.0)
        worker.close()

        # The piggy-backed task never left the process: no retry, no
        # attempt, no failure — it completes cleanly elsewhere.
        stats = dispatcher.stats()
        assert stats.failed == 0
        assert stats.retries == 0
        rescuer = LiveExecutor(dispatcher.endpoint).start()
        result = futures[1].result(timeout=15)
        assert result.ok
        assert result.attempts == 1
        assert dispatcher.stats().retries == 0
    finally:
        if client is not None:
            client.close()
        if rescuer is not None:
            rescuer.stop()
        dispatcher.close()


# ---------------------------------------------------------------- metrics
def test_liveness_metrics_helpers():
    stats = {
        "queued": 0,
        "busy": 0,
        "accepted": 10,
        "completed": 8,
        "failed": 2,
        "retries": 3,
        "executors_declared_dead": 1,
        "reconnects": 2,
        "stale_results": 0,
        "frames_dropped": 4,
    }
    assert tasks_lost(stats) == 0
    assert delivery_ratio(stats) == 0.8
    rates = fault_rates({"frames_seen": 100, "frames_dropped": 10, "sockets_killed": 1})
    assert rates["frames_dropped"] == 0.1
    assert rates["sockets_killed"] == 0.01
    rendered = liveness_summary(stats).render()
    assert "executors_declared_dead" in rendered
    assert "delivery_ratio" in rendered


def test_dispatcher_stats_include_failure_counters():
    with LocalFalkon(executors=1) as falkon:
        stats = falkon.dispatcher.stats()
    for key in ("executors_declared_dead", "reconnects", "stale_results", "frames_dropped"):
        assert getattr(stats, key) == 0
        # the mapping shim keeps wire payloads and legacy callers working
        assert key in stats
        assert stats[key] == 0
