"""End-to-end tests for the live 3-tier forwarder."""

import pytest

from repro.live import LiveClient, LiveDispatcher, LiveExecutor, LiveForwarder
from repro.types import TaskSpec


def build_tier(n_dispatchers, executors_each, key=None):
    dispatchers, executors = [], []
    for _ in range(n_dispatchers):
        dispatcher = LiveDispatcher(key=key)
        for _ in range(executors_each):
            executor = LiveExecutor(dispatcher.endpoint, key=key).start()
            assert executor.wait_registered()
            executors.append(executor)
        dispatchers.append(dispatcher)
    return dispatchers, executors


def teardown_tier(dispatchers, executors, forwarder=None, client=None):
    if client is not None:
        client.close()
    if forwarder is not None:
        forwarder.close()
    for executor in executors:
        executor.stop()
    for dispatcher in dispatchers:
        dispatcher.close()


def test_forwarder_routes_and_relays_results():
    dispatchers, executors = build_tier(2, 2)
    forwarder = LiveForwarder([d.address for d in dispatchers])
    client = LiveClient(forwarder.endpoint)
    try:
        tasks = [TaskSpec.sleep(0, task_id=f"fw{i:04d}") for i in range(60)]
        results = client.run(tasks, timeout=60)
        assert len(results) == 60
        assert all(r.ok for r in results)
        counts = forwarder.per_dispatcher_counts()
        assert sum(counts) == 60
        assert all(c > 0 for c in counts)  # both dispatchers used
    finally:
        teardown_tier(dispatchers, executors, forwarder, client)


def test_forwarder_balances_by_load():
    dispatchers, executors = build_tier(2, 1)
    forwarder = LiveForwarder([d.address for d in dispatchers])
    client = LiveClient(forwarder.endpoint)
    try:
        tasks = [TaskSpec.sleep(0.05, task_id=f"bal{i:03d}") for i in range(20)]
        results = client.run(tasks, timeout=60)
        assert all(r.ok for r in results)
        counts = forwarder.per_dispatcher_counts()
        # Least-loaded routing keeps the split roughly even.
        assert abs(counts[0] - counts[1]) <= 8
    finally:
        teardown_tier(dispatchers, executors, forwarder, client)


def test_forwarder_executor_ids_span_dispatchers():
    dispatchers, executors = build_tier(3, 1)
    forwarder = LiveForwarder([d.address for d in dispatchers])
    client = LiveClient(forwarder.endpoint)
    try:
        tasks = [TaskSpec.sleep(0.02, task_id=f"sp{i:03d}") for i in range(30)]
        results = client.run(tasks, timeout=60)
        used = {r.executor_id for r in results}
        assert len(used) >= 2
    finally:
        teardown_tier(dispatchers, executors, forwarder, client)


def test_forwarder_with_signed_frames():
    key = b"tier-key"
    dispatchers, executors = build_tier(1, 1, key=key)
    forwarder = LiveForwarder([d.address for d in dispatchers], key=key)
    client = LiveClient(forwarder.endpoint, key=key)
    try:
        results = client.run([TaskSpec.sleep(0, task_id="sec1")], timeout=30)
        assert results[0].ok
    finally:
        teardown_tier(dispatchers, executors, forwarder, client)


def test_forwarder_validation():
    with pytest.raises(ValueError):
        LiveForwarder([])
