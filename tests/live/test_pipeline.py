"""Bounded pipelining (§3.4 piggy-backing extended, wire v2).

Executors that advertise ``pipeline: N`` in REGISTER receive up to N
queued tasks per WORK/RESULT_ACK frame as a ``tasks`` list, report
completions in batched RESULT frames, and the dispatcher pushes the
matching settled results to clients in batched CLIENT_NOTIFY frames.
Depth-1 peers keep the v1 singular ``task``/``result`` wire format.
"""

import pytest

from repro.live.client import LiveClient
from repro.live.dispatcher import MAX_PIPELINE_DEPTH, LiveDispatcher
from repro.live.faults import FaultPlan
from repro.live.local import LocalFalkon
from repro.net.message import Message, MessageType
from repro.types import TaskSpec

from tests.live.util import RawPeer, wait_until


def _sleep_tasks(n, prefix="pp"):
    return [TaskSpec.sleep(0, task_id=f"{prefix}-{i:04d}") for i in range(n)]


def _register_pipelined(peer: RawPeer, executor_id: str, depth: int) -> None:
    peer.send(
        Message(
            MessageType.REGISTER,
            sender=executor_id,
            payload={"executor_id": executor_id, "pipeline": depth},
        )
    )
    peer.recv_until(MessageType.REGISTER_ACK)


def test_pipelined_deployment_completes_with_full_traces():
    with LocalFalkon(executors=2, pipeline_depth=8) as falkon:
        tasks = _sleep_tasks(200)
        results = falkon.run(tasks, timeout=60)
        assert all(r.ok for r in results)
        for task in tasks:
            assert falkon.dispatcher.spans.chain_complete(task.task_id), \
                falkon.dispatcher.spans.chain_errors(task.task_id)


def test_pipelined_work_frame_carries_task_list():
    with LiveDispatcher() as dispatcher:
        client = LiveClient(dispatcher.endpoint)
        futures = client.submit(_sleep_tasks(10, "wl"))
        peer = RawPeer(dispatcher.address)
        try:
            _register_pipelined(peer, "pp-exec", 4)
            peer.send(Message(MessageType.GET_WORK, sender="pp-exec"))
            work = peer.recv_until(MessageType.WORK)
            assert "task" not in work.payload  # v2, not the singular v1 key
            entries = work.payload["tasks"]
            assert 1 <= len(entries) <= 4
            for entry in entries:
                assert entry["task"]["task_id"].startswith("wl-")
                assert entry["attempt"] == 1
                assert entry["trace"] and "tid" in entry["trace"]
        finally:
            peer.close()
            client.close()
            del futures


def test_batched_result_settles_all_and_refills_ack():
    with LiveDispatcher() as dispatcher:
        client = LiveClient(dispatcher.endpoint)
        futures = client.submit(_sleep_tasks(8, "br"))
        peer = RawPeer(dispatcher.address)
        try:
            _register_pipelined(peer, "br-exec", 4)
            peer.send(Message(MessageType.GET_WORK, sender="br-exec"))
            work = peer.recv_until(MessageType.WORK)
            entries = work.payload["tasks"]
            assert len(entries) == 4
            # One RESULT frame carries the whole batch (wire v2).
            peer.send(
                Message(
                    MessageType.RESULT,
                    sender="br-exec",
                    payload={
                        "results": [
                            {
                                "result": {"task_id": e["task"]["task_id"],
                                           "return_code": 0},
                                "attempt": e["attempt"],
                                "exec": {"seconds": 0.0},
                            }
                            for e in entries
                        ]
                    },
                )
            )
            ack = peer.recv_until(MessageType.RESULT_ACK)
            # The ack refills the freed capacity with the next batch.
            refill = ack.payload["tasks"]
            assert len(refill) == 4
            done = {e["task"]["task_id"] for e in entries}
            assert {e["task"]["task_id"] for e in refill}.isdisjoint(done)
            # The settled batch reached the client (batched notify).
            settled = [f for f in futures if f.task_id in done]
            for future in settled:
                assert future.result(timeout=5.0).ok
            assert dispatcher.tasks_completed == 4
        finally:
            peer.close()
            client.close()


def test_depth1_peer_keeps_v1_singular_wire_format():
    with LiveDispatcher() as dispatcher:
        client = LiveClient(dispatcher.endpoint)
        futures = client.submit(_sleep_tasks(3, "v1"))
        peer = RawPeer(dispatcher.address)
        try:
            peer.register("v1-exec")
            peer.send(Message(MessageType.GET_WORK, sender="v1-exec"))
            work = peer.recv_until(MessageType.WORK)
            assert "tasks" not in work.payload
            assert work.payload["task"]["task_id"].startswith("v1-")
            assert work.payload["attempt"] == 1
            assert work.trace is not None
        finally:
            peer.close()
            client.close()
            del futures


def test_advertised_depth_is_capped():
    with LiveDispatcher() as dispatcher:
        client = LiveClient(dispatcher.endpoint)
        futures = client.submit(_sleep_tasks(2 * MAX_PIPELINE_DEPTH, "cap"))
        peer = RawPeer(dispatcher.address)
        try:
            _register_pipelined(peer, "cap-exec", 10_000)
            peer.send(Message(MessageType.GET_WORK, sender="cap-exec"))
            work = peer.recv_until(MessageType.WORK)
            assert len(work.payload["tasks"]) == MAX_PIPELINE_DEPTH
        finally:
            peer.close()
            client.close()
            del futures


def test_pipeline_depth_validation():
    with pytest.raises(ValueError):
        LocalFalkon(executors=1, pipeline_depth=0)


def test_pipelined_run_survives_frame_loss():
    # Replay and liveness must hold with batched WORK/RESULT frames:
    # a dropped frame now loses a whole batch, and the replay timer
    # must recover every task in it.
    plan = FaultPlan(seed=7, drop_rate=0.05)
    with LocalFalkon(
        executors=2,
        pipeline_depth=4,
        fault_plan=plan,
        heartbeat_interval=0.2,
        replay_timeout=0.75,
        max_retries=12,
    ) as falkon:
        tasks = _sleep_tasks(80, "fl")
        results = falkon.run(tasks, timeout=60)
        assert all(r.ok for r in results)
        assert wait_until(
            lambda: all(
                falkon.dispatcher.spans.chain_complete(t.task_id) for t in tasks
            ),
            timeout=5.0,
        )
