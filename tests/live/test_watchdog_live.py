"""Stall watchdog against a real deployment: the suppression rules
(no false positives on idle or saturated clusters) and the true
positive (every NOTIFY dropped on the floor must read as degraded).
"""

import json
import urllib.request

from repro.live import FaultPlan, LocalFalkon
from repro.types import TaskSpec

from tests.live.util import wait_until


def fetch(url: str, timeout: float = 5.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


class TestNoFalsePositives:
    def test_paused_but_empty_queue_never_trips(self):
        """Depth 0 with idle executors is quiet, not stalled — an idle
        deployment sitting many multiples of stall_after must stay ok."""
        with LocalFalkon(executors=2, stall_after=0.2,
                         heartbeat_interval=0.05) as falkon:
            deadline_sweeps = wait_until(
                lambda: falkon.dispatcher.health_snapshot()["uptime_s"] > 1.0,
                timeout=10.0)
            assert deadline_sweeps
            health = falkon.dispatcher.health_snapshot()
            assert health["status"] == "ok"
            assert health["degraded"] == []

    def test_sleep_heavy_workload_never_trips(self):
        """Queue deep + every executor busy is backpressure: zero idle
        capacity suppresses the detector for the whole run."""
        with LocalFalkon(executors=2, stall_after=0.2,
                         heartbeat_interval=0.05) as falkon:
            futures = falkon.submit(
                [TaskSpec.sleep(0.3, task_id=f"heavy-{i}") for i in range(6)])
            stall_seen = []

            def finished_clean():
                reasons = falkon.dispatcher.health_snapshot()["degraded"]
                stall_seen.extend(
                    r for r in reasons if "queue stalled" in r)
                return all(f.done() for f in futures)

            assert wait_until(finished_clean, timeout=30.0)
            assert stall_seen == []
            assert all(f.result().ok for f in futures)


class TestTruePositive:
    def test_dropped_notifies_trip_the_stall_detector(self):
        """Chaos plan that eats every NOTIFY: queued work, idle
        executors, no dispatch — the lost-wakeup signature the
        detector exists for.  Must surface on /healthz and /metrics."""
        plan = FaultPlan(seed=7, drop_rate=1.0, drop_types={"NOTIFY"},
                         roles=("executor",))
        falkon = LocalFalkon(executors=2, fault_plan=plan,
                             wire_binary=False, stall_after=0.4,
                             heartbeat_interval=0.05, http_port=0)
        try:
            falkon.submit(
                [TaskSpec.sleep(0, task_id=f"stall-{i}") for i in range(4)])

            def stalled():
                health = falkon.dispatcher.health_snapshot()
                return any("queue stalled" in r for r in health["degraded"])

            assert wait_until(stalled, timeout=20.0)
            base = falkon.http.url("").rstrip("/")
            health = json.loads(fetch(base + "/healthz"))
            assert health["status"] == "degraded"
            assert any("queue stalled" in r for r in health["degraded"])
            metrics = fetch(base + "/metrics").decode()
            assert "falkon_dispatcher_degraded 1" in metrics
            assert "falkon_dispatcher_queue_stall_seconds" in metrics
            assert "falkon_dispatcher_ioloop_lag_seconds" in metrics
        finally:
            falkon.close()
