"""Restart recovery, dead-letter quarantine and admission control.

The durability acceptance bar: a dispatcher killed mid-run (in-process
crash points or a real ``kill -9``) comes back from its journal with
exactly-once-*visible* completion — every client future resolves with
one result, nothing is lost, nothing double-completes.  Poison tasks
quarantine instead of cycling, and a bounded queue pushes back with
SUBMIT_REJECT until clients converge.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.live import (
    FaultPlan,
    Journal,
    LiveClient,
    LiveDispatcher,
    LiveExecutor,
    LocalFalkon,
)
from repro.net.message import Message, MessageType
from repro.types import TaskSpec

from tests.live.util import RawPeer, wait_until


def specs(n, seconds=0.05, prefix="rec"):
    return [
        TaskSpec(task_id=f"{prefix}-{i:04d}", command="sleep", args=(str(seconds),))
        for i in range(n)
    ]


# ---------------------------------------------------------------- restart
def test_restart_recovers_queue_and_results(tmp_path):
    """Kill a dispatcher cleanly mid-queue; the successor re-enqueues
    the unfinished tail and keeps finished results queryable."""
    journal_dir = str(tmp_path)
    disp = LiveDispatcher(journal_dir=journal_dir)
    client = LiveClient(disp.endpoint, max_reconnects=0)
    client.submit(specs(4, prefix="rq"))
    # No executor: everything is still queued when the dispatcher dies.
    client.close()
    disp.close()

    disp2 = LiveDispatcher(journal_dir=journal_dir)
    try:
        assert disp2.recovered_tasks == 4
        stats = disp2.stats()
        assert stats.queued == 4 and stats.recovered == 4
    finally:
        disp2.close()


@pytest.mark.chaos
def test_seeded_crash_between_dispatch_and_result_ack(tmp_path):
    """Seeded chaos: the dispatcher dies with a RESULT frame in hand
    (between DISPATCH and RESULT_ACK — the executor did the work, but
    no settle was journalled).  A successor on the same port recovers;
    every future resolves exactly once."""
    n = 8
    journal_dir = str(tmp_path)
    plan = FaultPlan(seed=20070607, crash_points={"before-result": 1})
    disp = LiveDispatcher(journal_dir=journal_dir, fault_plan=plan)
    port = disp.address[1]
    executor = LiveExecutor(disp.endpoint, max_reconnects=100, backoff_base=0.05).start()
    executor.wait_registered()
    client = LiveClient(disp.endpoint, max_reconnects=100)
    disp2 = None
    try:
        futures = client.submit(specs(n, prefix="cr"))
        assert wait_until(lambda: plan.counters["crashes_fired"] == 1, timeout=30.0)
        assert wait_until(lambda: disp.journal.closed, timeout=10.0)
        disp2 = LiveDispatcher(journal_dir=journal_dir, port=port)
        results = [f.result(timeout=60.0) for f in futures]
        assert all(r.ok for r in results)
        assert {r.task_id for r in results} == {s.task_id for s in specs(n, prefix="cr")}
        # Exactly-once-visible: the successor's ledger holds one
        # completion per task — recovered settles and replayed attempts
        # never double-count.
        assert disp2.stats().completed == n
    finally:
        client.close()
        executor.stop()
        if disp2 is not None:
            disp2.close()
        disp.close()


@pytest.mark.chaos
def test_kill_dash_nine_survives_with_exactly_once_visibility(tmp_path):
    """The real thing: SIGKILL the dispatcher *process* mid-run, then
    restart against the same journal directory and port."""
    n = 12
    journal_dir = str(tmp_path)
    child_src = (
        "import sys, time\n"
        "from repro.live import LiveDispatcher\n"
        "disp = LiveDispatcher(journal_dir=sys.argv[1])\n"
        "print(disp.address[1], flush=True)\n"
        "while True:\n"
        "    time.sleep(1)\n"
    )
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(repo_src) + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-c", child_src, journal_dir],
        stdout=subprocess.PIPE, env=env, text=True,
    )
    disp2 = None
    executor = client = None
    try:
        port = int(child.stdout.readline())
        address = f"127.0.0.1:{port}"
        executor = LiveExecutor(address, max_reconnects=200, backoff_base=0.05).start()
        executor.wait_registered()
        client = LiveClient(address, max_reconnects=200)
        futures = client.submit(specs(n, seconds=0.1, prefix="k9"))
        # Let the run get genuinely mid-flight before pulling the plug.
        assert wait_until(lambda: sum(f.done() for f in futures) >= 2, timeout=30.0)
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=10)
        disp2 = LiveDispatcher(journal_dir=journal_dir, port=port)
        results = [f.result(timeout=60.0) for f in futures]
        assert all(r.ok for r in results)
        assert len({r.task_id for r in results}) == n
        assert disp2.stats().completed == n
    finally:
        if client is not None:
            client.close()
        if executor is not None:
            executor.stop()
        if disp2 is not None:
            disp2.close()
        if child.poll() is None:
            child.kill()
        child.stdout.close()


def test_recovery_tolerates_malformed_result_record(tmp_path):
    """One malformed journalled result (version skew, corruption that
    passed the CRC) must degrade to a synthesized failure for that
    task, not abort the whole dispatcher boot."""
    with Journal(str(tmp_path)) as journal:
        journal.append("submit", "bad-1",
                       spec={"task_id": "bad-1", "command": "sleep", "args": ["0"]},
                       client="c-1")
        # A result payload that is not a wire dict at all.
        journal.append("result", "bad-1", outcome="fail", result="corrupt")
        journal.append("submit", "ok-1",
                       spec={"task_id": "ok-1", "command": "sleep", "args": ["0"]},
                       client="c-1")
        journal.commit()
    disp = LiveDispatcher(journal_dir=str(tmp_path))
    try:
        assert disp.recovered_tasks == 2
        stats = disp.stats()
        assert stats.failed == 1  # bad-1, with a synthesized failure result
        assert stats.queued == 1  # ok-1 re-enqueued normally
    finally:
        disp.close()


def test_submit_rejected_when_journal_cannot_commit(tmp_path):
    """If the group commit cannot confirm durability, the dispatcher
    must refuse the bundle instead of acking a promise it cannot keep
    — and must not enqueue anything."""
    disp = LiveDispatcher(journal_dir=str(tmp_path))
    # Model a stalled/failed WAL: commit can no longer confirm.
    disp.journal.commit = lambda timeout=5.0: False
    client = LiveClient(disp.endpoint, max_submit_retries=0)
    try:
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            client.submit(specs(2, prefix="jf"))
        assert client.submit_rejects == 1
        stats = disp.stats()
        assert stats.submit_rejects == 1
        assert stats.queued == 0 and stats.accepted == 0
    finally:
        client.close()
        disp.close()


# ---------------------------------------------------------------- adoption
def _seed_journal(journal_dir, task_id, attempts=1):
    """A journal whose one task was dispatched (attempt N) pre-crash."""
    with Journal(journal_dir) as journal:
        journal.append("submit", task_id,
                       spec={"task_id": task_id, "command": "sleep", "args": ["0"]},
                       client="c-1")
        journal.append("dispatch", task_id, attempt=attempts, executor="e-1")
        journal.commit()


def test_register_inflight_echo_adopts_matching_attempt(tmp_path):
    """An executor that survived the crash echoes its in-flight task on
    REGISTER; the recovering dispatcher adopts the dispatch instead of
    re-running it, then accepts the resent result."""
    _seed_journal(str(tmp_path), "adopt-1")
    disp = LiveDispatcher(journal_dir=str(tmp_path))
    peer = RawPeer(disp.address)
    try:
        peer.send(Message(MessageType.REGISTER, sender="e-1",
                          payload={"executor_id": "e-1",
                                   "inflight": [{"task_id": "adopt-1", "attempt": 1}]}))
        peer.recv_until(MessageType.REGISTER_ACK)
        assert wait_until(lambda: disp.stats().inflight_adopted == 1, timeout=5.0)
        assert disp.stats().queued == 0  # not re-dispatched elsewhere
        peer.send(Message(MessageType.RESULT, sender="e-1",
                          payload={"result": {"task_id": "adopt-1", "return_code": 0},
                                   "attempt": 1}))
        peer.recv_until(MessageType.RESULT_ACK)
        assert wait_until(lambda: disp.stats().completed == 1, timeout=5.0)
    finally:
        peer.close()
        disp.close()


def test_register_inflight_echo_mismatched_attempt_not_adopted(tmp_path):
    """A stale echo (superseded attempt) is refused: the task stays
    queued for a fresh dispatch and the stale result is dropped."""
    _seed_journal(str(tmp_path), "stale-1", attempts=2)
    disp = LiveDispatcher(journal_dir=str(tmp_path))
    peer = RawPeer(disp.address)
    try:
        peer.send(Message(MessageType.REGISTER, sender="e-1",
                          payload={"executor_id": "e-1",
                                   "inflight": [{"task_id": "stale-1", "attempt": 1}]}))
        peer.recv_until(MessageType.REGISTER_ACK)
        stats = disp.stats()
        assert stats.inflight_adopted == 0
        peer.send(Message(MessageType.RESULT, sender="e-1",
                          payload={"result": {"task_id": "stale-1", "return_code": 0},
                                   "attempt": 1}))
        peer.recv_until(MessageType.RESULT_ACK)
        assert wait_until(lambda: disp.stats().stale_results == 1, timeout=5.0)
        assert disp.stats().completed == 0
    finally:
        peer.close()
        disp.close()


def test_executor_stash_resends_unreported_results(tmp_path):
    """The executor-side half of adoption: results that could not be
    sent are stashed, echoed on REGISTER, and resent after the ack."""
    _seed_journal(str(tmp_path), "stash-1")
    disp = LiveDispatcher(journal_dir=str(tmp_path))
    executor = LiveExecutor(disp.endpoint, max_reconnects=10)
    executor._unreported.append(
        {"result": {"task_id": "stash-1", "return_code": 0}, "attempt": 1,
         "exec": {"seconds": 0.0}}
    )
    executor.start()
    try:
        executor.wait_registered()
        assert wait_until(lambda: disp.stats().completed == 1, timeout=10.0)
        stats = disp.stats()
        assert stats.inflight_adopted == 1
        assert executor._unreported == []
    finally:
        executor.stop()
        disp.close()


# ---------------------------------------------------------------- DLQ
def test_poison_task_lands_in_dlq_and_is_retryable(tmp_path):
    attempts = {"n": 0}

    def flaky():
        attempts["n"] += 1
        if attempts["n"] <= 4:
            raise RuntimeError("poison until the operator intervenes")
        return "recovered"

    with LocalFalkon(
        executors=1, max_retries=3, journal_dir=str(tmp_path),
        python_registry={"flaky": flaky},
    ) as falkon:
        future = falkon.client.submit(TaskSpec(task_id="poison-1", command="python:flaky"))
        result = future.result(timeout=30.0)
        assert not result.ok
        assert result.attempts == 4  # initial + max_retries
        entries = falkon.dispatcher.dlq_list()
        assert [e["task_id"] for e in entries] == ["poison-1"]
        assert entries[0]["attempts"] == 4
        assert falkon.dispatcher.stats().dlq_size == 1

        # Operator retry: budget reset, task re-queued; the fifth
        # attempt succeeds and the DLQ drains.
        assert falkon.dispatcher.dlq_retry("poison-1") is True
        assert wait_until(lambda: falkon.dispatcher.stats().completed == 1, timeout=30.0)
        assert falkon.dispatcher.dlq_list() == []
        assert falkon.dispatcher.stats().dlq_size == 0
        # The client saw the terminal failure (no hanging future); the
        # post-retry success is visible through the polling path.
        assert falkon.dispatcher.dlq_retry("poison-1") is False  # not quarantined now


def test_dlq_survives_restart(tmp_path):
    with LocalFalkon(executors=1, max_retries=0, journal_dir=str(tmp_path)) as falkon:
        result = falkon.run([TaskSpec(task_id="dead-1", command="false")], timeout=30)[0]
        assert not result.ok
        assert [e["task_id"] for e in falkon.dispatcher.dlq_list()] == ["dead-1"]
    disp = LiveDispatcher(journal_dir=str(tmp_path))
    try:
        entries = disp.dlq_list()
        assert [e["task_id"] for e in entries] == ["dead-1"]
        assert disp.stats().dlq_size == 1
    finally:
        disp.close()


def test_dlq_retry_unknown_task_is_false():
    with LocalFalkon(executors=1) as falkon:
        assert falkon.dispatcher.dlq_retry("never-heard-of-it") is False


# ---------------------------------------------------------------- admission
def test_overflow_rejected_then_converges():
    with LocalFalkon(executors=1, queue_limit=8, bundle_size=4) as falkon:
        falkon.client.backoff_cap = 0.2
        futures = falkon.client.submit(specs(16, seconds=0.02, prefix="adm"))
        results = [f.result(timeout=60.0) for f in futures]
        assert all(r.ok for r in results)
        assert falkon.client.submit_rejects >= 1
        assert falkon.dispatcher.stats().submit_rejects == falkon.client.submit_rejects


def test_reject_carries_retry_after_hint():
    disp = LiveDispatcher(queue_limit=2, reject_retry_after=0.5)
    client = LiveClient(disp.endpoint, max_submit_retries=0, bundle_size=10)
    try:
        client.submit(specs(2, prefix="fill"))  # fills the queue (no executors)
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            client.submit(specs(4, prefix="over"))
        assert client.submit_rejects == 1
    finally:
        client.close()
        disp.close()


def test_resubmission_is_idempotent_per_task_id():
    """A client retrying a SUBMIT whose ack was lost must not
    double-enqueue: the dispatcher dedupes by task id."""
    disp = LiveDispatcher()
    peer_client = LiveClient(disp.endpoint)
    try:
        peer_client.submit(specs(3, prefix="dup"))
        # Re-send the same bundle straight over the wire (the client
        # API would refuse the duplicate ids locally).
        peer_client._send_bundle(specs(3, prefix="dup"))
        assert disp.stats().queued == 3
    finally:
        peer_client.close()
        disp.close()


def test_duplicate_submit_of_settled_task_renotifies():
    """Submitting a task id that already settled (reused journal dir,
    resubmission after a lost ack) converges instead of hanging: the
    dispatcher re-pushes the stored result and does not re-execute."""
    with LocalFalkon(executors=1) as falkon:
        first = falkon.client.submit(specs(1, seconds=0.0, prefix="dup2")[0])
        assert first.result(timeout=10.0).ok
        late = LiveClient(falkon.dispatcher.endpoint)
        try:
            future = late.submit(specs(1, seconds=0.0, prefix="dup2")[0])
            assert future.result(timeout=10.0).ok
        finally:
            late.close()
        # The stored result was replayed — the task ran exactly once.
        assert falkon.dispatcher.stats().completed == 1


def test_queue_limit_validation():
    with pytest.raises(ValueError):
        LiveDispatcher(queue_limit=0)
    with pytest.raises(ValueError):
        LiveDispatcher(reject_retry_after=-1.0)
