"""HTTP status surface tests: unit (StatusServer on fakes) and the
tier-1 smoke test against a real LocalFalkon deployment.

The smoke test is the verify-suite guard for the telemetry plane: a
live run with ``--http-port`` semantics must answer /metrics in valid
exposition format, /status with strict JSON, and /tasks/<id> with the
span chain — while tasks flow.
"""

import json
import math
import urllib.error
import urllib.request

import pytest

from repro.live.local import LocalFalkon
from repro.obs import StatusServer, json_safe
from repro.types import TaskSpec

from tests.live.util import wait_until


def fetch(url: str, timeout: float = 5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


def post(url: str, timeout: float = 5.0):
    request = urllib.request.Request(url, data=b"", method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


class TestJsonSafe:
    def test_nan_and_inf_become_null_recursively(self):
        value = {"a": math.nan, "b": [1.0, math.inf], "c": {"d": -math.inf}}
        safe = json_safe(value)
        assert safe == {"a": None, "b": [1.0, None], "c": {"d": None}}
        json.dumps(safe)  # strictly serialisable

    def test_finite_values_pass_through(self):
        assert json_safe({"x": 1.5, "y": "s", "z": [0]}) == {"x": 1.5, "y": "s", "z": [0]}


class TestStatusServerUnit:
    def make_server(self):
        return StatusServer(
            metrics_text=lambda: "falkon_test_total 1\n",
            status=lambda: {"queued": 2, "p50": math.nan},
            task=lambda task_id: ([{"name": "submit"}] if task_id == "t-1" else None),
        )

    def test_metrics_content_type_and_body(self):
        with self.make_server() as server:
            status, headers, body = fetch(server.url("/metrics"))
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        assert body == b"falkon_test_total 1\n"

    def test_status_is_strict_json_with_nan_scrubbed(self):
        with self.make_server() as server:
            status, headers, body = fetch(server.url("/status"))
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)  # would raise on a bare NaN token
        assert payload == {"queued": 2, "p50": None}

    def test_task_chain_and_404_for_unknown(self):
        with self.make_server() as server:
            _, _, body = fetch(server.url("/tasks/t-1"))
            assert json.loads(body)["spans"] == [{"name": "submit"}]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/tasks/missing"))
            assert excinfo.value.code == 404
            assert "missing" in json.load(excinfo.value)["error"]

    def test_unknown_path_404_lists_endpoints(self):
        with self.make_server() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/wat"))
            assert excinfo.value.code == 404
            assert "/metrics" in json.load(excinfo.value)["endpoints"]

    def test_handler_bug_answers_500_instead_of_hanging(self):
        def broken_status():
            raise RuntimeError("boom")

        with StatusServer(lambda: "", broken_status, lambda _tid: None) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/status"))
            assert excinfo.value.code == 500
            assert "boom" in json.load(excinfo.value)["error"]

    def test_close_is_idempotent(self):
        server = self.make_server()
        server.close()
        server.close()

    def test_post_handler_bug_answers_500_json_like_get(self):
        """POST shares GET's 500 contract: a JSON error body, not a hang
        or a bare HTML error page."""
        def broken_retry(_task_id):
            raise RuntimeError("kaboom")

        with StatusServer(lambda: "", dict, lambda _tid: None,
                          dlq_retry=broken_retry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(server.url("/dlq/t-1/retry"))
            assert excinfo.value.code == 500
            assert excinfo.value.headers["Content-Type"] == "application/json"
            assert "kaboom" in json.load(excinfo.value)["error"]

    def test_healthz_legacy_plain_text_without_callable(self):
        with self.make_server() as server:
            status, headers, body = fetch(server.url("/healthz"))
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert body == b"ok\n"

    def test_healthz_json_when_callable_wired(self):
        health = {"status": "degraded", "degraded": ["queue stalled"],
                  "shard_id": "shard-0", "wire": "v4", "io_threads": 2}
        with StatusServer(lambda: "", dict, lambda _tid: None,
                          healthz=lambda: health) as server:
            status, headers, body = fetch(server.url("/healthz"))
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body) == health

    def test_fleet_endpoint_served_only_when_wired(self):
        fleet = {"alive": 2, "total": 2, "shards": {"shard-0": {"alive": True}}}
        with StatusServer(lambda: "", dict, lambda _tid: None,
                          fleet=lambda: fleet) as server:
            assert json.loads(fetch(server.url("/fleet"))[2]) == fleet
        with self.make_server() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/fleet"))
            assert excinfo.value.code == 404

    def test_debug_dump_post_passes_reason_through(self):
        seen = []

        def dump(reason):
            seen.append(reason)
            return f"/tmp/flight-{reason}.json"

        with StatusServer(lambda: "", dict, lambda _tid: None,
                          debug_dump=dump) as server:
            payload = json.loads(post(server.url("/debug/dump?reason=probe"))[2])
            assert payload == {"dumped": "/tmp/flight-probe.json",
                               "reason": "probe"}
            payload = json.loads(post(server.url("/debug/dump"))[2])
            assert payload["reason"] == "debug"
        assert seen == ["probe", "debug"]

    def test_debug_dump_404_when_not_wired(self):
        with self.make_server() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(server.url("/debug/dump"))
            assert excinfo.value.code == 404


class TestLiveHttpSmoke:
    """Tier-1: the whole surface against a real deployment."""

    def test_endpoints_while_tasks_flow(self):
        with LocalFalkon(executors=2, http_port=0,
                         heartbeat_interval=0.1) as falkon:
            tasks = [TaskSpec.sleep(0, task_id=f"http-{i:04d}") for i in range(60)]
            results = falkon.run(tasks, timeout=60)
            assert all(r.ok for r in results)
            base = falkon.http.url("").rstrip("/")

            # /metrics: exposition text covering every co-located
            # registry, counters under their _total names.
            _, headers, body = fetch(base + "/metrics")
            text = body.decode()
            assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
            assert "falkon_dispatcher_tasks_accepted_total 60" in text
            assert "falkon_executor_tasks_executed_total" in text
            assert 'falkon_dispatcher_dispatch_latency_seconds_bucket{le="+Inf"} 60' in text

            # /status: dispatcher stats + executor table.  Heartbeat
            # stats stream on a 0.1 s period; wait until both agents'
            # telemetry landed.
            def telemetry_complete():
                payload = json.loads(fetch(base + "/status")[2])
                table = payload["executors"]
                return len(table) == 2 and all(
                    "executed" in row for row in table.values()
                )

            assert wait_until(telemetry_complete, timeout=10.0)
            payload = json.loads(fetch(base + "/status")[2])
            assert payload["dispatcher"]["completed"] == 60
            executed = sum(row["executed"] for row in payload["executors"].values())
            assert executed == 60
            assert "utilization" in payload["cluster"]
            assert "efficiency_vs_task_length" in payload["cluster"]

            # /tasks/<id>: the full span chain of a settled task.
            chain = json.loads(fetch(base + "/tasks/http-0000")[2])
            names = [span["name"] for span in chain["spans"]]
            assert names == ["submit", "enqueue", "notify", "pull",
                             "exec", "result", "ack"]

            # /healthz for probes: JSON with shard identity and the
            # watchdog-fed degraded list (empty on a healthy box).
            status, headers, body = fetch(base + "/healthz")
            assert status == 200
            assert headers["Content-Type"] == "application/json"
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["degraded"] == []
            assert health["wire"] in ("v3", "v4")
            assert health["io_threads"] >= 1

    def test_repro_top_renders_against_a_live_surface(self, capsys):
        from repro.cli import main

        with LocalFalkon(executors=2, http_port=0,
                         heartbeat_interval=0.1) as falkon:
            tasks = [TaskSpec.sleep(0, task_id=f"top-{i:04d}") for i in range(40)]
            falkon.run(tasks, timeout=60)
            base = falkon.http.url("").rstrip("/")
            assert main(["top", "--http", base, "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "executors 2" in out
        assert "done 40/40" in out
        assert "EXECUTOR" in out  # the per-executor table rendered

    def test_repro_top_unreachable_endpoint_exits_2(self, capsys):
        from repro.cli import main

        assert main(["top", "--http", "http://127.0.0.1:1",
                     "--iterations", "1"]) == 2
        assert "--http-port" in capsys.readouterr().err

    def test_http_off_by_default(self):
        with LocalFalkon(executors=1) as falkon:
            assert falkon.http is None
            assert falkon.dispatcher.http is None
