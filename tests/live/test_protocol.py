"""Unit tests for live-plane serialisation and connections."""

import socket
import threading

import pytest

from repro.live import (
    Connection,
    result_from_dict,
    result_to_dict,
    task_from_dict,
    task_to_dict,
)
from repro.net.message import Message, MessageType
from repro.types import DataLocation, DataRef, TaskResult, TaskSpec


def test_task_roundtrip_full():
    task = TaskSpec(
        task_id="t1",
        command="convert",
        args=("-size", "10"),
        working_dir="/tmp",
        env=(("A", "1"), ("B", "2")),
        duration=2.5,
        reads=(DataRef("in", 100, DataLocation.LOCAL),),
        writes=(DataRef("out", 50),),
        runtime_estimate=3.0,
        stage="project",
    )
    assert task_from_dict(task_to_dict(task)) == task


def test_task_roundtrip_defaults():
    task = TaskSpec.sleep(0, task_id="s")
    assert task_from_dict(task_to_dict(task)) == task


def test_result_roundtrip():
    result = TaskResult(
        "t1", return_code=3, stdout="out", stderr="err",
        executor_id="e9", error="boom", attempts=2,
    )
    parsed = result_from_dict(result_to_dict(result))
    assert parsed.task_id == "t1"
    assert parsed.return_code == 3
    assert parsed.stdout == "out" and parsed.stderr == "err"
    assert parsed.executor_id == "e9"
    assert parsed.error == "boom"
    assert parsed.attempts == 2


def _socket_pair():
    server = socket.create_server(("127.0.0.1", 0))
    port = server.getsockname()[1]
    left = socket.create_connection(("127.0.0.1", port))
    right, _ = server.accept()
    server.close()
    return left, right


@pytest.mark.parametrize("key", [None, b"secret"])
def test_connection_roundtrip(key):
    left_sock, right_sock = _socket_pair()
    received = []
    got = threading.Event()

    def handler(msg):
        received.append(msg)
        got.set()

    left = Connection(left_sock, handler=lambda m: None, key=key, name="L").start()
    right = Connection(right_sock, handler=handler, key=key, name="R").start()
    left.send(Message(MessageType.NOTIFY, sender="test", payload={"n": 1}))
    assert got.wait(5.0)
    assert received[0].type is MessageType.NOTIFY
    assert received[0].payload == {"n": 1}
    left.close()
    right.join(5.0)
    assert right.closed


def test_connection_key_mismatch_drops_stream():
    left_sock, right_sock = _socket_pair()
    received = []
    left = Connection(left_sock, handler=lambda m: None, key=b"k1", name="L").start()
    right = Connection(right_sock, handler=received.append, key=b"k2", name="R").start()
    left.send(Message(MessageType.NOTIFY))
    right.join(5.0)
    assert right.closed
    assert received == []


def test_connection_on_close_fires_once():
    left_sock, right_sock = _socket_pair()
    closes = []
    left = Connection(left_sock, handler=lambda m: None, name="L").start()
    right = Connection(
        right_sock, handler=lambda m: None, on_close=lambda: closes.append(1), name="R"
    ).start()
    right.close()
    right.close()
    right.join(5.0)
    assert closes == [1]
    left.close()


def test_send_after_close_raises():
    from repro.errors import ProtocolError

    left_sock, right_sock = _socket_pair()
    left = Connection(left_sock, handler=lambda m: None, name="L").start()
    left.close()
    with pytest.raises(ProtocolError):
        left.send(Message(MessageType.NOTIFY))
    right_sock.close()
