"""Unit tests for live-plane serialisation and connections, plus
seeded fuzzing of the frame parser: truncated, corrupted, oversized and
garbage frames must surface as :class:`ProtocolError` — never as a
hang, another exception type, or a dead server thread."""

import random
import socket
import struct
import threading

import pytest

from repro.errors import ProtocolError, SecurityError
from repro.live import (
    Connection,
    LiveClient,
    LiveDispatcher,
    result_from_dict,
    result_to_dict,
    task_from_dict,
    task_to_dict,
)
from repro.net.message import Message, MessageType
from repro.net.wire import MAX_FRAME_BYTES, FrameReader, encode_frame
from repro.types import DataLocation, DataRef, TaskResult, TaskSpec


def test_task_roundtrip_full():
    task = TaskSpec(
        task_id="t1",
        command="convert",
        args=("-size", "10"),
        working_dir="/tmp",
        env=(("A", "1"), ("B", "2")),
        duration=2.5,
        reads=(DataRef("in", 100, DataLocation.LOCAL),),
        writes=(DataRef("out", 50),),
        runtime_estimate=3.0,
        stage="project",
    )
    assert task_from_dict(task_to_dict(task)) == task


def test_task_roundtrip_defaults():
    task = TaskSpec.sleep(0, task_id="s")
    assert task_from_dict(task_to_dict(task)) == task


def test_result_roundtrip():
    result = TaskResult(
        "t1", return_code=3, stdout="out", stderr="err",
        executor_id="e9", error="boom", attempts=2,
    )
    parsed = result_from_dict(result_to_dict(result))
    assert parsed.task_id == "t1"
    assert parsed.return_code == 3
    assert parsed.stdout == "out" and parsed.stderr == "err"
    assert parsed.executor_id == "e9"
    assert parsed.error == "boom"
    assert parsed.attempts == 2


def _socket_pair():
    server = socket.create_server(("127.0.0.1", 0))
    port = server.getsockname()[1]
    left = socket.create_connection(("127.0.0.1", port))
    right, _ = server.accept()
    server.close()
    return left, right


@pytest.mark.parametrize("key", [None, b"secret"])
def test_connection_roundtrip(key):
    left_sock, right_sock = _socket_pair()
    received = []
    got = threading.Event()

    def handler(msg):
        received.append(msg)
        got.set()

    left = Connection(left_sock, handler=lambda m: None, key=key, name="L").start()
    right = Connection(right_sock, handler=handler, key=key, name="R").start()
    left.send(Message(MessageType.NOTIFY, sender="test", payload={"n": 1}))
    assert got.wait(5.0)
    assert received[0].type is MessageType.NOTIFY
    assert received[0].payload == {"n": 1}
    left.close()
    right.join(5.0)
    assert right.closed


def test_connection_key_mismatch_drops_stream():
    left_sock, right_sock = _socket_pair()
    received = []
    left = Connection(left_sock, handler=lambda m: None, key=b"k1", name="L").start()
    right = Connection(right_sock, handler=received.append, key=b"k2", name="R").start()
    left.send(Message(MessageType.NOTIFY))
    right.join(5.0)
    assert right.closed
    assert received == []


def test_connection_on_close_fires_once():
    left_sock, right_sock = _socket_pair()
    closes = []
    left = Connection(left_sock, handler=lambda m: None, name="L").start()
    right = Connection(
        right_sock, handler=lambda m: None, on_close=lambda: closes.append(1), name="R"
    ).start()
    right.close()
    right.close()
    right.join(5.0)
    assert closes == [1]
    left.close()


def test_send_after_close_raises():
    left_sock, right_sock = _socket_pair()
    left = Connection(left_sock, handler=lambda m: None, name="L").start()
    left.close()
    with pytest.raises(ProtocolError):
        left.send(Message(MessageType.NOTIFY))
    right_sock.close()


# ---------------------------------------------------------------------------
# parser fuzzing
# ---------------------------------------------------------------------------
def _sample_frame(key=None) -> bytes:
    msg = Message(MessageType.NOTIFY, sender="fuzz", payload={"n": 17, "s": "abc"})
    return encode_frame(msg.to_dict(), key=key)


def test_fuzz_mutated_signed_frames_always_raise_protocol_error():
    # Any single-byte mutation of a signed frame body changes content
    # under the signature: the reader must reject every one of them.
    rng = random.Random(0xFA1C07)
    frame = _sample_frame(key=b"secret")
    for _ in range(300):
        mutated = bytearray(frame)
        index = rng.randrange(4, len(frame))
        mutated[index] ^= rng.randrange(1, 256)
        reader = FrameReader(key=b"secret")
        with pytest.raises(ProtocolError):
            list(reader.feed(bytes(mutated)))


def test_fuzz_mutations_never_escape_the_protocol_error_contract():
    # Unsigned frames: a mutation may survive as different-but-valid
    # JSON, but the only exception the parser is ever allowed to raise
    # is ProtocolError (UnicodeDecodeError from non-UTF-8 bytes was a
    # real escape here).
    rng = random.Random(0xB0DE)
    frame = _sample_frame()
    for _ in range(300):
        mutated = bytearray(frame)
        index = rng.randrange(4, len(frame))
        mutated[index] ^= rng.randrange(1, 256)
        reader = FrameReader()
        try:
            list(reader.feed(bytes(mutated)))
        except ProtocolError:
            pass


def test_truncated_frames_are_inert_and_resumable():
    frame = _sample_frame(key=b"secret")
    for cut in range(len(frame)):
        reader = FrameReader(key=b"secret")
        assert list(reader.feed(frame[:cut])) == []
        assert reader.pending_bytes == cut
        # The rest of the bytes arriving later completes the frame.
        assert len(list(reader.feed(frame[cut:]))) == 1
        assert reader.pending_bytes == 0


def test_corrupted_hmac_signature_raises_security_error():
    import json

    envelope = json.loads(_sample_frame(key=b"secret")[4:])
    envelope["sig"] = "0" * 64
    body = json.dumps(envelope).encode()
    reader = FrameReader(key=b"secret")
    with pytest.raises(SecurityError):
        list(reader.feed(struct.pack(">I", len(body)) + body))


def test_oversized_advertised_length_rejected():
    reader = FrameReader()
    with pytest.raises(ProtocolError):
        list(reader.feed(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"junk"))


def _assert_dispatcher_still_serves(dispatcher: LiveDispatcher) -> None:
    client = LiveClient(dispatcher.endpoint)
    try:
        assert client.epr is not None
    finally:
        client.close()


@pytest.mark.parametrize(
    "hostile_bytes",
    [
        struct.pack(">I", MAX_FRAME_BYTES + 1) + b"junk",  # oversized header
        struct.pack(">I", 8) + b"\xff" * 8,  # invalid UTF-8 body
        struct.pack(">I", 4) + b"}{!(",  # invalid JSON body
    ],
    ids=["oversized", "non-utf8", "bad-json"],
)
def test_hostile_frames_drop_session_but_not_server(hostile_bytes):
    # A garbage stream must cost its own session only: the reader
    # thread drops the connection and the dispatcher keeps serving.
    dispatcher = LiveDispatcher()
    try:
        hostile = socket.create_connection(dispatcher.address, timeout=5.0)
        hostile.sendall(hostile_bytes)
        hostile.settimeout(10.0)
        assert hostile.recv(1) == b""  # server closed us, didn't hang
        hostile.close()
        _assert_dispatcher_still_serves(dispatcher)
    finally:
        dispatcher.close()
