"""Chaos tests for heartbeat-carried telemetry (``pytest -m chaos``).

The acceptance bar for the live telemetry plane under adversity:

* stats deltas riding HEARTBEAT frames keep converging when a seeded
  fault plan drops frames — telemetry is best-effort but self-healing,
  because every delta carries cumulative counters;
* an evicted executor's series disappear from the store and the status
  surface (no stuck gauges);
* v1 peers — bare heartbeats, or junk where the stats field should be —
  interoperate: the run completes and the store stays clean.
"""

import math

import pytest

from repro.live import FaultPlan, LocalFalkon
from repro.net.message import Message, MessageType
from repro.types import TaskSpec

from tests.live.util import RawPeer, wait_until

pytestmark = pytest.mark.chaos

SEED = 20070607


class TestStatsUnderFrameLoss:
    def test_timeseries_converges_despite_dropped_frames(self):
        plan = FaultPlan(seed=SEED, drop_rate=0.10)
        with LocalFalkon(
            executors=3,
            heartbeat_interval=0.1,
            heartbeat_miss_budget=30,  # loss must not evict anyone here
            replay_timeout=0.75,
            max_retries=12,
            fault_plan=plan,
        ) as falkon:
            tasks = [TaskSpec.sleep(0, task_id=f"loss-{i:04d}") for i in range(150)]
            results = falkon.run(tasks, timeout=120)
            assert all(r.ok for r in results)
            store = falkon.dispatcher.timeseries

            # Heartbeats are lossy, but the deltas are cumulative
            # counters: the *latest* surviving sample per executor must
            # converge on the true totals.
            def totals_converged():
                executed = 0.0
                for executor in falkon.executors:
                    latest = store.latest(executor.executor_id)
                    if "executed" not in latest:
                        return False
                    executed += latest["executed"]
                return executed >= len(tasks)

            assert wait_until(totals_converged, timeout=15.0)
            assert plan.snapshot()["frames_dropped"] > 0  # not a clean run

    def test_dispatcher_self_samples_survive_chaos(self):
        plan = FaultPlan(seed=SEED + 7, drop_rate=0.10)
        with LocalFalkon(
            executors=3,
            heartbeat_interval=0.1,
            heartbeat_miss_budget=30,
            replay_timeout=0.75,
            max_retries=12,
            fault_plan=plan,
        ) as falkon:
            tasks = [TaskSpec.sleep(0, task_id=f"self-{i:04d}") for i in range(100)]
            results = falkon.run(tasks, timeout=120)
            assert all(r.ok for r in results)
            store = falkon.dispatcher.timeseries
            assert wait_until(
                lambda: store.latest("dispatcher").get("completed", 0.0) >= 100,
                timeout=15.0,
            )
            cluster = store.cluster()
            assert cluster["registered"] == 3.0
            overhead = cluster["overhead_per_task_s"]
            assert not math.isnan(overhead) and overhead >= 0.0


class TestEvictionConvergence:
    def test_evicted_executor_leaves_no_stuck_gauges(self):
        with LocalFalkon(
            executors=3,
            heartbeat_interval=0.2,
            heartbeat_miss_budget=3,
            replay_timeout=1.0,
            max_retries=12,
        ) as falkon:
            tasks = [TaskSpec.sleep(0, task_id=f"evict-{i:04d}") for i in range(60)]
            results = falkon.run(tasks, timeout=60)
            assert all(r.ok for r in results)
            store = falkon.dispatcher.timeseries
            victim = falkon.executors[0]
            # Its heartbeats have been streaming stats.
            assert wait_until(
                lambda: "executed" in store.latest(victim.executor_id), timeout=10.0
            )
            # Socket death with no deregister: the liveness monitor must
            # both evict the session and forget its telemetry.
            victim._stop.set()
            victim._conn.close()
            assert wait_until(
                lambda: victim.executor_id not in store.sources(), timeout=15.0
            )
            assert store.latest(victim.executor_id) == {}
            snapshot = falkon.dispatcher.status_snapshot()
            assert victim.executor_id not in snapshot["executors"]
            # The survivors' telemetry is untouched.
            survivors = [e.executor_id for e in falkon.executors[1:]]
            assert all(s in store.sources() for s in survivors)


class TestV1Interop:
    def test_stats_free_heartbeats_complete_the_run(self):
        # heartbeat_stats=False emulates a v1 agent: bare HEARTBEAT
        # frames, no stats field anywhere.
        with LocalFalkon(
            executors=2,
            heartbeat_interval=0.1,
            heartbeat_stats=False,
        ) as falkon:
            tasks = [TaskSpec.sleep(0, task_id=f"v1-{i:04d}") for i in range(80)]
            results = falkon.run(tasks, timeout=60)
            assert all(r.ok for r in results)
            store = falkon.dispatcher.timeseries
            # No executor series were minted; the dispatcher's own
            # samples (and derived gauges) still work.
            for executor in falkon.executors:
                assert store.latest(executor.executor_id) == {}
            assert wait_until(
                lambda: store.latest("dispatcher").get("completed", 0.0) >= 80,
                timeout=10.0,
            )
            # The status surface degrades gracefully: the executor
            # table still lists both agents from session-side truth.
            snapshot = falkon.dispatcher.status_snapshot()
            assert len(snapshot["executors"]) == 2
            for row in snapshot["executors"].values():
                assert "pipeline" in row and "executed" not in row

    def test_junk_stats_never_poison_the_store(self):
        with LocalFalkon(executors=1) as falkon:
            peer = RawPeer(falkon.dispatcher.address)
            try:
                peer.register("junk-exec")
                peer.send(Message(
                    MessageType.HEARTBEAT, sender="junk-exec",
                    payload={"stats": {"executed": "a lot", "nan": float("nan"),
                                       "list": [1], "ok": 5}},
                ))
                store = falkon.dispatcher.timeseries

                def sanitized():
                    latest = store.latest("junk-exec")
                    return set(latest) == {"ok", "_t"}

                assert wait_until(sanitized, timeout=10.0)
                # Entirely malformed stats fields are ignored outright.
                peer.send(Message(
                    MessageType.HEARTBEAT, sender="junk-exec",
                    payload={"stats": "not a mapping"},
                ))
                peer.send(Message(
                    MessageType.HEARTBEAT, sender="junk-exec",
                    payload={"stats": {"everything": "junk"}},
                ))
                # The dispatcher still works: real tasks flow.
                results = falkon.run(
                    [TaskSpec.sleep(0, task_id="post-junk")], timeout=30
                )
                assert results[0].ok
                assert set(store.latest("junk-exec")) == {"ok", "_t"}
            finally:
                peer.close()

    def test_unregistered_peer_cannot_mint_series(self):
        # A raw socket spraying HEARTBEAT+stats without REGISTER must
        # not create telemetry series (role-gated ingest).
        with LocalFalkon(executors=1) as falkon:
            peer = RawPeer(falkon.dispatcher.address)
            try:
                peer.send(Message(
                    MessageType.HEARTBEAT, sender="ghost",
                    payload={"stats": {"executed": 999}},
                ))
                results = falkon.run(
                    [TaskSpec.sleep(0, task_id="after-ghost")], timeout=30
                )
                assert results[0].ok
                assert "ghost" not in falkon.dispatcher.timeseries.sources()
            finally:
                peer.close()
