"""Client-side contracts: bundle-atomic validation and future semantics.

``LiveClient.submit`` must validate a whole bundle before registering
any future (a duplicate mid-bundle must not strand earlier tasks), and
:class:`TaskFuture` must keep the ``concurrent.futures`` contract for
``cancel`` / ``result`` / ``exception`` timeouts.
"""

import threading
import time
from concurrent.futures import CancelledError

import pytest

from repro.live import LiveDispatcher, LiveClient, LocalFalkon
from repro.live.client import TaskFuture
from repro.types import TaskSpec

from tests.live.util import wait_until


def spec(task_id):
    return TaskSpec(task_id=task_id, command="sleep", args=("0",))


# ---------------------------------------------------------------- bundles
def test_duplicate_within_bundle_registers_nothing():
    disp = LiveDispatcher()
    client = LiveClient(disp.endpoint)
    try:
        with pytest.raises(ValueError, match="duplicate task id"):
            client.submit([spec("a"), spec("b"), spec("a")])
        # Nothing half-registered: the same ids submit cleanly now.
        futures = client.submit([spec("a"), spec("b")])
        assert [f.task_id for f in futures] == ["a", "b"]
    finally:
        client.close()
        disp.close()


def test_duplicate_against_prior_submission_rejected_atomically():
    disp = LiveDispatcher()
    client = LiveClient(disp.endpoint)
    try:
        client.submit(spec("a"))
        with pytest.raises(ValueError, match="already submitted"):
            client.submit([spec("fresh"), spec("a")])
        # The fresh id from the rejected bundle was not registered
        # either — the whole bundle failed atomically.
        futures = client.submit(spec("fresh"))
        assert futures.task_id == "fresh"
    finally:
        client.close()
        disp.close()


def test_rejected_bundle_reaches_dispatcher_never():
    disp = LiveDispatcher()
    client = LiveClient(disp.endpoint)
    try:
        with pytest.raises(ValueError):
            client.submit([spec("x"), spec("x")])
        time.sleep(0.1)
        assert disp.stats().accepted == 0
    finally:
        client.close()
        disp.close()


# ---------------------------------------------------------------- futures
def test_cancel_pending_future():
    future = TaskFuture("t-1")
    assert future.cancel() is True
    assert future.cancelled() and future.done()
    with pytest.raises(CancelledError):
        future.result(timeout=0)
    with pytest.raises(CancelledError):
        future.exception(timeout=0)


def test_cancel_is_idempotent():
    future = TaskFuture("t-1")
    assert future.cancel() is True
    assert future.cancel() is True  # like concurrent.futures: still cancelled


def test_cancel_after_result_is_too_late():
    from repro.types import TaskResult

    future = TaskFuture("t-1")
    future._fulfill(TaskResult(task_id="t-1"))
    assert future.cancel() is False
    assert not future.cancelled()
    assert future.result(timeout=0).task_id == "t-1"


def test_result_after_cancel_is_ignored():
    from repro.types import TaskResult

    future = TaskFuture("t-1")
    future.cancel()
    future._fulfill(TaskResult(task_id="t-1"))  # late notify: first wins
    with pytest.raises(CancelledError):
        future.result(timeout=0)


def test_result_timeout_raises_timeouterror():
    future = TaskFuture("t-1")
    started = time.monotonic()
    with pytest.raises(TimeoutError):
        future.result(timeout=0.05)
    assert time.monotonic() - started < 5.0
    with pytest.raises(TimeoutError):
        future.exception(timeout=0.05)
    assert not future.done()


def test_callbacks_fire_on_cancel():
    future = TaskFuture("t-1")
    fired = []
    future.add_done_callback(lambda f: fired.append(f.cancelled()))
    future.cancel()
    assert fired == [True]
    # and immediately when already settled
    future.add_done_callback(lambda f: fired.append("late"))
    assert fired == [True, "late"]


def test_cancelled_task_still_runs_server_side():
    """Local-abandon semantics: cancel voids the claim check, not the
    work — the dispatcher still settles the task."""
    with LocalFalkon(executors=1) as falkon:
        future = falkon.client.submit(
            TaskSpec(task_id="c-1", command="sleep", args=("0.2",))
        )
        assert future.cancel() is True
        with pytest.raises(CancelledError):
            future.result(timeout=5.0)
        assert wait_until(lambda: falkon.dispatcher.stats().completed == 1, timeout=10.0)


def test_concurrent_result_waiters_all_release():
    from repro.types import TaskResult

    future = TaskFuture("t-1")
    seen = []
    threads = [
        threading.Thread(target=lambda: seen.append(future.result(timeout=10.0)))
        for _ in range(4)
    ]
    for t in threads:
        t.start()
    future._fulfill(TaskResult(task_id="t-1"))
    for t in threads:
        t.join(timeout=10.0)
    assert len(seen) == 4
