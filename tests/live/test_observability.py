"""Observability plane over the live system: traces, metrics, futures API."""

import threading

import pytest

from repro.errors import ReconnectError
from repro.live import LocalFalkon, TaskFuture
from repro.obs import SPAN_ORDER, render_prometheus
from repro.types import Bundle, TaskResult, TaskSpec


class TestLiveTracing:
    def test_every_settled_task_has_a_complete_chain(self):
        with LocalFalkon(executors=2) as falkon:
            tasks = [TaskSpec.sleep(0.0, task_id=f"obs-{i:03d}") for i in range(20)]
            results = falkon.run(tasks, timeout=30)
            assert all(r.ok for r in results)
            for task in tasks:
                assert falkon.dispatcher.spans.chain_complete(task.task_id), \
                    falkon.dispatcher.spans.chain_errors(task.task_id)

    def test_chain_follows_protocol_order(self):
        with LocalFalkon(executors=1) as falkon:
            falkon.run([TaskSpec.sleep(0.0, task_id="obs-order")], timeout=30)
            chain = falkon.trace("obs-order")
        assert [s.name for s in chain] == list(SPAN_ORDER)
        # One causal line: each span parents on its predecessor.
        for prev, cur in zip(chain, chain[1:]):
            assert cur.parent_id == prev.span_id
        starts = [s.start for s in chain]
        assert starts == sorted(starts)

    def test_exec_span_carries_executor_measurement(self):
        with LocalFalkon(executors=1) as falkon:
            falkon.run([TaskSpec.sleep(0.05, task_id="obs-exec")], timeout=30)
            chain = falkon.trace("obs-exec")
        exec_span = next(s for s in chain if s.name == "exec")
        assert exec_span.get("seconds") >= 0.05
        assert exec_span.duration == pytest.approx(exec_span.get("seconds"), abs=1e-6)

    def test_failed_task_settles_with_fail_outcome(self):
        with LocalFalkon(executors=1, max_retries=1) as falkon:
            results = falkon.run(
                [TaskSpec(task_id="obs-fail", command="false")], timeout=30
            )
            assert not results[0].ok
            chain = falkon.trace("obs-fail")
            assert falkon.dispatcher.spans.chain_complete("obs-fail"), \
                falkon.dispatcher.spans.chain_errors("obs-fail")
        result_spans = [s for s in chain if s.name == "result"]
        assert result_spans[0].get("outcome") == "retry"
        assert result_spans[-1].get("outcome") == "fail"
        # The retry re-entered the queue with the next attempt number.
        assert result_spans[-1].attempt == 2


class TestLiveMetrics:
    def test_dispatcher_registry_tracks_the_run(self):
        with LocalFalkon(executors=2) as falkon:
            falkon.run([TaskSpec.sleep(0.0, task_id=f"m-{i}") for i in range(10)],
                       timeout=30)
            snap = falkon.dispatcher.metrics.snapshot()
            stats = falkon.dispatcher.stats()
        assert snap["dispatcher_tasks_accepted"] == 10
        assert snap["dispatcher_tasks_completed"] == 10
        assert snap["dispatcher_e2e_latency_seconds_count"] == 10
        assert stats.dispatch_latency_p50 > 0.0
        assert stats.dispatch_latency_p50 <= stats.dispatch_latency_p99

    def test_executor_stats_and_prometheus_render(self):
        with LocalFalkon(executors=1) as falkon:
            falkon.run([TaskSpec.sleep(0.0, task_id=f"p-{i}") for i in range(4)],
                       timeout=30)
            executor = falkon.executors[0]
            stats = executor.stats()
            text = render_prometheus(*falkon.metrics_registries())
        assert stats.tasks_executed == 4
        assert stats.executor_id == executor.executor_id
        assert "falkon_dispatcher_tasks_accepted_total 4" in text
        assert "falkon_executor_tasks_executed_total 4" in text

    def test_dump_observability_round_trips_spans(self, tmp_path):
        from repro.obs import read_spans_jsonl

        with LocalFalkon(executors=1) as falkon:
            falkon.run([TaskSpec.sleep(0.0, task_id="dump-0")], timeout=30)
            paths = falkon.dump_observability(tmp_path / "obs")
        spans_path = next(p for p in paths if p.endswith("spans.jsonl"))
        names = [s.name for s in read_spans_jsonl(spans_path)
                 if s.task_id == "dump-0"]
        assert names == list(SPAN_ORDER)


class TestFutureApi:
    def test_single_spec_submit_returns_single_future(self):
        with LocalFalkon(executors=1) as falkon:
            future = falkon.client.submit(TaskSpec.sleep(0.0, task_id="single-0"))
            assert isinstance(future, TaskFuture)
            result = future.result(timeout=30)
        assert result.ok
        assert future.done() and not future.running()

    def test_bundle_submit_shim(self):
        with LocalFalkon(executors=1) as falkon:
            bundle = Bundle(tuple(
                TaskSpec.sleep(0.0, task_id=f"bndl-{i}") for i in range(3)
            ))
            futures = falkon.client.submit(bundle)
            assert isinstance(futures, list) and len(futures) == 3
            assert all(f.result(timeout=30).ok for f in futures)

    def test_done_callback_fires_on_completion(self):
        fired = threading.Event()
        seen = []
        with LocalFalkon(executors=1) as falkon:
            future = falkon.client.submit(TaskSpec.sleep(0.0, task_id="cb-0"))
            future.add_done_callback(lambda f: (seen.append(f), fired.set()))
            future.result(timeout=30)
            assert fired.wait(5.0)
        assert seen == [future]

    def test_done_callback_after_completion_fires_immediately(self):
        with LocalFalkon(executors=1) as falkon:
            future = falkon.client.submit(TaskSpec.sleep(0.0, task_id="cb-1"))
            future.result(timeout=30)
            seen = []
            future.add_done_callback(seen.append)
            assert seen == [future]

    def test_callback_exceptions_are_swallowed(self):
        future = TaskFuture("cb-2")

        def explode(_):
            raise RuntimeError("boom")

        seen = []
        future.add_done_callback(explode)
        future.add_done_callback(seen.append)
        future._fail(ReconnectError("link lost"))
        assert seen == [future]
        assert isinstance(future.exception(), ReconnectError)

    def test_exception_is_none_on_success(self):
        with LocalFalkon(executors=1) as falkon:
            future = falkon.client.submit(TaskSpec.sleep(0.0, task_id="exc-0"))
            assert future.exception(timeout=30) is None

    def test_exception_times_out_like_result(self):
        future = TaskFuture("never")
        with pytest.raises(TimeoutError):
            future.exception(timeout=0.01)

    def test_cancellation_follows_concurrent_futures(self):
        # Local-abandon semantics (see tests/live/test_client_semantics.py
        # for the full surface): a pending future cancels; a settled one
        # is too late, exactly like concurrent.futures.Future.cancel.
        future = TaskFuture("nc-0")
        assert future.cancel() is True
        assert future.cancelled() is True
        settled = TaskFuture("nc-1")
        settled._fulfill(TaskResult(task_id="nc-1"))
        assert settled.cancel() is False
        assert settled.cancelled() is False


class TestClientConstructors:
    def test_connect_classmethod_and_context_manager(self):
        from repro.live import LiveClient

        with LocalFalkon(executors=1) as falkon:
            host, port = falkon.dispatcher.address
            with LiveClient.connect(host, port) as client:
                result = client.submit(
                    TaskSpec.sleep(0.0, task_id="conn-0")
                ).result(timeout=30)
                assert result.ok
            assert client._user_closed
