"""Federation: hash ring, work stealing, router failover, v2 interop."""

import threading
import time

import pytest

from repro.live import LiveClient, LiveDispatcher, LiveExecutor
from repro.live.federation import HashRing, LocalFederation, aggregate_stats
from repro.types import TaskSpec

from tests.live.util import wait_until


def specs(n, seconds=0.0, prefix="fed"):
    return [
        TaskSpec(task_id=f"{prefix}-{i:04d}", command="sleep",
                 args=(str(seconds),))
        for i in range(n)
    ]


# ---------------------------------------------------------------- hash ring
class TestHashRing:
    def test_deterministic_across_instances(self):
        labels = ["s0", "s1", "s2"]
        a, b = HashRing(labels), HashRing(list(reversed(labels)))
        keys = [f"task-{i}" for i in range(200)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_distribution_is_not_degenerate(self):
        ring = HashRing(["s0", "s1"])
        owned = sum(1 for i in range(1000) if ring.owner(f"t-{i}") == "s0")
        assert 200 < owned < 800

    def test_preference_starts_with_owner_and_covers_all(self):
        ring = HashRing(["s0", "s1", "s2"])
        pref = ring.preference("some-task")
        assert pref[0] == ring.owner("some-task")
        assert sorted(pref) == ["s0", "s1", "s2"]

    def test_single_label(self):
        ring = HashRing(["only"])
        assert ring.owner("anything") == "only"


# ---------------------------------------------------------------- stealing
class TestWorkStealing:
    def test_idle_shard_steals_from_deep_peer(self):
        """A shard with zero executors donates everything to its idle
        peer; results settle back on the home shard's clients."""
        donor = LiveDispatcher(shard_id="a", monitor_interval=0.05,
                               steal_min_queue=0)
        thief = LiveDispatcher(shard_id="b", monitor_interval=0.05,
                               steal_min_queue=0)
        executor = client = None
        try:
            donor.add_peer("b", thief.endpoint)
            thief.add_peer("a", donor.endpoint)
            executor = LiveExecutor(thief.endpoint, pipeline=4).start()
            executor.wait_registered()
            client = LiveClient(donor.endpoint)
            results = client.run(specs(20, seconds=0.005), timeout=30)
            assert all(r.ok for r in results)

            a, b = donor.stats(), thief.stats()
            assert a.stolen_out == 20
            assert b.stolen_in == 20
            assert wait_until(lambda: thief.stats().stolen_completed == 20)
            # Home-shard attribution: the donor owns completion...
            assert a.completed == 20
            assert a.failed == 0
            # ...and the aggregate counts each task exactly once.
            agg = aggregate_stats([donor.stats(), thief.stats()])
            assert agg.accepted == 20
            assert agg.completed == 20
            assert agg.stolen_tasks == 20
            assert agg.steals_granted >= 1
        finally:
            if client is not None:
                client.close()
            if executor is not None:
                executor.stop()
                executor.join(timeout=5.0)
            donor.close()
            thief.close()

    def test_peers_are_not_executors_in_stats(self):
        donor = LiveDispatcher(shard_id="a", monitor_interval=0.05)
        thief = LiveDispatcher(shard_id="b", monitor_interval=0.05)
        try:
            donor.add_peer("b", thief.endpoint)
            thief.add_peer("a", donor.endpoint)
            assert wait_until(
                lambda: "a" in thief._peer_depths and "b" in donor._peer_depths,
                timeout=5.0,
            )
            assert donor.stats().registered == 0
            assert thief.stats().registered == 0
        finally:
            donor.close()
            thief.close()


# ---------------------------------------------------------------- v2 interop
class TestWireV2Interop:
    def test_plain_dispatcher_never_sees_steal_traffic(self):
        """A federated shard peered at a non-federated (wire v2)
        dispatcher must not steal from it: the v2 side never
        advertises the capability, so the link never becomes ready."""
        plain = LiveDispatcher()  # shard_id=None: the v2 dispatcher
        fed = LiveDispatcher(shard_id="f", monitor_interval=0.05,
                             steal_min_queue=0)
        plain_exec = fed_exec = client = None
        try:
            fed.add_peer("p", plain.endpoint)
            # The federated side is idle with capacity -> it *wants*
            # to steal; the plain side has a deep queue to tempt it.
            fed_exec = LiveExecutor(fed.endpoint).start()
            fed_exec.wait_registered()
            plain_exec = LiveExecutor(plain.endpoint).start()
            plain_exec.wait_registered()
            client = LiveClient(plain.endpoint)
            futures = client.submit(specs(12, seconds=0.05, prefix="v2"))
            time.sleep(0.6)  # several monitor sweeps' worth of temptation
            # No peer pseudo-executor materialised on the v2 dispatcher,
            # no grants, no stolen tasks anywhere.
            assert not [e for e in plain._executors if e.startswith("peer:")]
            assert plain.stats().steals_granted == 0
            assert fed.stats().stolen_in == 0
            for fut in futures:
                assert fut.result(timeout=30).ok
        finally:
            if client is not None:
                client.close()
            for ex in (plain_exec, fed_exec):
                if ex is not None:
                    ex.stop()
                    ex.join(timeout=5.0)
            plain.close()
            fed.close()


# ---------------------------------------------------------------- failover
class TestRouterFailover:
    def test_shard_killed_mid_run_retargets_without_stuck_futures(
            self, tmp_path):
        settle_counts = {}
        lock = threading.Lock()

        def on_done(fut):
            with lock:
                settle_counts[fut.task_id] = settle_counts.get(fut.task_id, 0) + 1

        with LocalFederation(shards=2, executors_per_shard=2,
                             monitor_interval=0.05,
                             journal_root=str(tmp_path)) as fed:
            futures = fed.submit(specs(60, seconds=0.03, prefix="kill"))
            for fut in futures:
                fut.add_done_callback(on_done)
            assert wait_until(
                lambda: sum(1 for f in futures if f.done()) >= 10,
                timeout=20.0,
            )
            fed.kill_shard("s1")
            assert wait_until(lambda: all(f.done() for f in futures),
                              timeout=30.0)
            stuck = [f.task_id for f in futures if not f.done()]
            assert stuck == []
            assert all(f.result(0).ok for f in futures)
            # Exactly-once-visible at the router surface.
            assert all(count == 1 for count in settle_counts.values())
            assert len(settle_counts) == 60

            # The survivor keeps accepting; a restarted shard rejoins.
            fed.restart_shard("s1")
            again = fed.run(specs(20, prefix="after"), timeout=30)
            assert all(r.ok for r in again)

    def test_submits_while_shard_down_land_on_survivor(self, tmp_path):
        with LocalFederation(shards=2, executors_per_shard=1,
                             monitor_interval=0.05,
                             journal_root=str(tmp_path)) as fed:
            fed.kill_shard("s1")
            results = fed.run(specs(30, prefix="down"), timeout=30)
            assert all(r.ok for r in results)
            s0 = fed.shard_stats()["s0"]
            assert s0.completed == 30


# ---------------------------------------------------------------- facade
class TestFederationFacade:
    def test_trace_resolves_across_shards(self):
        with LocalFederation(shards=2, executors_per_shard=1,
                             monitor_interval=0.05) as fed:
            results = fed.run(specs(8, prefix="tr"), timeout=30)
            assert all(r.ok for r in results)
            for task_id in ("tr-0000", "tr-0007"):
                chain = fed.trace(task_id)
                assert chain, f"no span chain for {task_id}"

    def test_falkon_client_protocol_conformance(self):
        from repro.api import FalkonClient

        with LocalFederation(shards=2, executors_per_shard=1,
                             monitor_interval=0.05) as fed:
            assert isinstance(fed, FalkonClient)
            assert isinstance(fed.router, FalkonClient)
            futs = fed.submit(specs(6, prefix="proto"))
            done = list(fed.as_completed(futs, timeout=30))
            assert len(done) == 6
            assert all(f.result(0).ok for f in done)
