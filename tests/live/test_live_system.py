"""End-to-end tests of the live (real TCP) Falkon."""

import time

import pytest

from repro.config import SecurityMode
from repro.live import LiveClient, LiveDispatcher, LiveExecutor, LocalFalkon
from repro.types import TaskSpec

from tests.live.util import wait_until


def sleep_specs(n, seconds=0.0, prefix="lt"):
    return [TaskSpec.sleep(seconds, task_id=f"{prefix}-{i:05d}") for i in range(n)]


# ---------------------------------------------------------------- basics
def test_shell_tasks_run_for_real():
    with LocalFalkon(executors=2) as falkon:
        results = falkon.map_shell(["echo alpha", "echo beta"])
    outs = sorted(r.stdout.strip() for r in results)
    assert outs == ["alpha", "beta"]
    assert all(r.ok for r in results)


def test_python_registry_tasks():
    registry = {"square": lambda x: int(x) ** 2}
    with LocalFalkon(executors=2, python_registry=registry) as falkon:
        results = falkon.map_python("square", [(3,), (5,)])
    assert sorted(r.stdout for r in results) == ["25", "9"]


def test_unknown_python_task_fails_cleanly():
    with LocalFalkon(executors=1, python_registry={"ok": lambda: None}) as falkon:
        result = falkon.run(
            [TaskSpec(task_id="bad", command="python:missing")], timeout=10
        )[0]
    assert not result.ok
    assert "unknown python task" in result.error


def test_map_python_requires_registration():
    with LocalFalkon(executors=1) as falkon:
        with pytest.raises(KeyError):
            falkon.map_python("nope", [()])


def test_failing_subprocess_reports_return_code():
    with LocalFalkon(executors=1, max_retries=0) as falkon:
        result = falkon.map_shell(["false"])[0]
    assert result.return_code != 0
    assert not result.ok


def test_nonexistent_command_reports_error():
    with LocalFalkon(executors=1, max_retries=0) as falkon:
        result = falkon.map_shell(["definitely-not-a-command-xyz"])[0]
    assert not result.ok
    assert result.error


def test_many_small_tasks_all_complete():
    with LocalFalkon(executors=4) as falkon:
        results = falkon.run(sleep_specs(300), timeout=60)
    assert len(results) == 300
    assert all(r.ok for r in results)
    assert len({r.task_id for r in results}) == 300


def test_work_spreads_across_executors():
    with LocalFalkon(executors=4) as falkon:
        results = falkon.run(sleep_specs(40, seconds=0.05), timeout=60)
    assert len({r.executor_id for r in results}) >= 2


def test_timelines_are_consistent():
    with LocalFalkon(executors=2) as falkon:
        results = falkon.run(sleep_specs(20, seconds=0.01), timeout=30)
    for r in results:
        assert r.timeline.submitted <= r.timeline.dispatched <= r.timeline.completed


# ---------------------------------------------------------------- security
def test_secure_mode_round_trip():
    with LocalFalkon(executors=2, security=SecurityMode.GSI_SECURE_CONVERSATION) as falkon:
        results = falkon.map_shell(["echo signed"])
    assert results[0].stdout.strip() == "signed"


def test_unsigned_peer_rejected_by_secure_dispatcher():
    with LocalFalkon(executors=1, security=SecurityMode.GSI_SECURE_CONVERSATION) as falkon:
        address = falkon.dispatcher.endpoint
        # A client without the key cannot create an instance.
        from repro.errors import ProtocolError

        with pytest.raises((ProtocolError, TimeoutError)):
            LiveClient(address, key=None)


# ---------------------------------------------------------------- retries
def test_executor_crash_replays_task():
    dispatcher = LiveDispatcher(max_retries=3)
    registry = {"slow": lambda: time.sleep(0.4)}
    victim = LiveExecutor(dispatcher.endpoint, python_registry=registry).start()
    assert victim.wait_registered()
    backup = LiveExecutor(dispatcher.endpoint, python_registry=registry).start()
    assert backup.wait_registered()
    client = LiveClient(dispatcher.endpoint)
    try:
        futures = client.submit(
            [TaskSpec(task_id=f"c{i}", command="python:slow") for i in range(4)]
        )
        # Wait until work is actually in flight, not a fixed grace period.
        assert wait_until(lambda: dispatcher.stats().busy >= 1, timeout=10.0)
        # Kill the victim's socket abruptly: its in-flight task replays.
        victim._conn.close()
        results = [f.result(timeout=30) for f in futures]
        assert all(r.ok for r in results)
        assert dispatcher.stats().retries >= 1
    finally:
        client.close()
        backup.stop()
        victim.stop()
        dispatcher.close()


def test_idle_timeout_releases_executor():
    dispatcher = LiveDispatcher()
    executor = LiveExecutor(dispatcher.endpoint, idle_timeout=0.3).start()
    assert executor.wait_registered()
    executor.join(timeout=5.0)
    assert not executor.running
    assert wait_until(lambda: dispatcher.stats().registered == 0, timeout=5.0)
    dispatcher.close()


# ---------------------------------------------------------------- provisioner
def test_provisioner_scales_up_and_drains():
    with LocalFalkon(provision=True, max_executors=3, idle_timeout=0.5) as falkon:
        results = falkon.run(sleep_specs(12, seconds=0.1, prefix="pr"), timeout=60)
        assert all(r.ok for r in results)
        assert falkon.provisioner.allocations >= 1
        assert falkon.provisioner.allocations <= 3
        # After idle_timeout, the pool drains.
        assert wait_until(lambda: falkon.provisioner.pool_size == 0, timeout=10.0)


# ---------------------------------------------------------------- dispatcher
def test_dispatcher_stats_shape():
    with LocalFalkon(executors=2) as falkon:
        falkon.run(sleep_specs(10, prefix="st"), timeout=30)
        stats = falkon.dispatcher.stats()
    assert stats.completed == 10
    assert stats.accepted == 10
    assert stats.queued == 0


def test_duplicate_executor_id_rejected():
    dispatcher = LiveDispatcher()
    a = LiveExecutor(dispatcher.endpoint, executor_id="dup").start()
    assert a.wait_registered()
    b = LiveExecutor(dispatcher.endpoint, executor_id="dup").start()
    assert b.wait_rejected()
    assert dispatcher.stats().registered == 1
    a.stop()
    b.stop()
    dispatcher.close()


def test_duplicate_task_id_rejected_client_side():
    with LocalFalkon(executors=1) as falkon:
        falkon.run([TaskSpec.sleep(0, task_id="once")], timeout=10)
        with pytest.raises(ValueError):
            falkon.client.submit([TaskSpec.sleep(0, task_id="once")])


def test_get_results_polling_path():
    from repro.net.message import Message, MessageType

    with LocalFalkon(executors=1) as falkon:
        falkon.run(sleep_specs(3, prefix="poll"), timeout=30)
        # Issue an explicit GET_RESULTS {9,10} on the client connection
        # and wait for the RESULTS reply to be handled.
        client = falkon.client
        client._results_reply.clear()
        client._conn.send(Message(MessageType.GET_RESULTS, sender=client.epr))
        assert client._results_reply.wait(10.0)
        assert falkon.dispatcher.stats().completed == 3


def test_validation():
    with pytest.raises(ValueError):
        LocalFalkon(executors=0)
    with pytest.raises(ValueError):
        LiveDispatcher(max_retries=-1)
    with pytest.raises(ValueError):
        LiveExecutor(("127.0.0.1", 1), idle_timeout=0)
