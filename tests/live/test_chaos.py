"""Seeded chaos runs over the live plane (``pytest -m chaos``).

The acceptance bar for the fault-injection subsystem: a workload run
under frame loss plus an executor killed mid-flight completes every
task with zero lost, and the same seed reproduces the same outcome.
"""

import pytest

from repro.live import FaultAction, FaultPlan, LocalFalkon
from repro.metrics import tasks_lost
from repro.types import TaskSpec

from tests.live.util import wait_until

pytestmark = pytest.mark.chaos

TASKS = 200
EXECUTORS = 4
DROP_RATE = 0.10
SEED = 20070607


def run_chaos(seed: int):
    """One seeded chaos run: 10% frame drop on every dispatcher->
    executor link, and one of the four executors killed (socket death,
    no deregister) once the workload is mid-flight."""
    plan = FaultPlan(seed=seed, drop_rate=DROP_RATE)
    # max_retries is sized so the drop rate cannot plausibly exhaust
    # it: P(12 consecutive losses) ~ 0.1**12 per task.
    falkon = LocalFalkon(
        executors=EXECUTORS,
        heartbeat_interval=0.2,
        heartbeat_miss_budget=3,
        replay_timeout=0.75,
        max_retries=12,
        fault_plan=plan,
    )
    with falkon:
        specs = [TaskSpec.sleep(0.0, task_id=f"chaos-{i:04d}") for i in range(TASKS)]
        futures = falkon.client.submit(specs)
        assert wait_until(
            lambda: falkon.dispatcher.stats().completed >= TASKS // 4, timeout=60.0
        )
        victim = falkon.executors[0]
        victim._stop.set()  # no clean deregister:
        victim._conn.close()  # the socket just dies mid-workload
        results = [f.result(timeout=120.0) for f in futures]
        stats = falkon.dispatcher.stats()
        fault_counts = plan.snapshot()
    assert all(r.ok for r in results)
    assert len(results) == TASKS
    return stats, fault_counts


def test_chaos_run_completes_everything_and_reproduces():
    stats_a, faults_a = run_chaos(SEED)
    stats_b, faults_b = run_chaos(SEED)

    for stats in (stats_a, stats_b):
        assert stats.accepted == TASKS
        assert stats.completed == TASKS
        assert stats.failed == 0
        assert tasks_lost(stats) == 0

    # The faults really fired (this was not a clean run) and the
    # injected loss forced the recovery machinery to do work.
    assert faults_a["frames_dropped"] > 0
    assert faults_b["frames_dropped"] > 0

    # Same seed, same outcome.  Timing-dependent counters (retries,
    # exact frame tallies) legitimately vary run to run; the logical
    # outcome — every task accepted, completed, none failed or lost —
    # must not.
    for key in ("accepted", "completed", "failed"):
        assert stats_a[key] == stats_b[key]


def test_fault_schedule_is_identical_across_fresh_plans():
    # The per-connection decision sequence is a pure function of
    # (seed, connection name): two plans built from the same seed give
    # byte-identical schedules, which is what makes a chaos failure
    # replayable.
    for name in ("session-1", "session-7"):
        a = FaultPlan(seed=SEED, drop_rate=DROP_RATE).schedule(name, 256)
        b = FaultPlan(seed=SEED, drop_rate=DROP_RATE).schedule(name, 256)
        assert a == b
        assert a.count(FaultAction.DROP) > 0


def test_trace_propagation_survives_fault_injection():
    """Satellite acceptance: under seeded frame loss plus replays,
    every settled task still yields a complete, monotonically ordered
    span chain, and no span belongs to an unknown task (no orphans —
    stale deliveries must not open traces)."""
    plan = FaultPlan(seed=SEED + 1, drop_rate=DROP_RATE)
    falkon = LocalFalkon(
        executors=EXECUTORS,
        heartbeat_interval=0.2,
        heartbeat_miss_budget=3,
        replay_timeout=0.75,
        max_retries=12,
        fault_plan=plan,
    )
    with falkon:
        specs = [TaskSpec.sleep(0.0, task_id=f"trace-{i:04d}") for i in range(TASKS)]
        futures = falkon.client.submit(specs)
        results = [f.result(timeout=120.0) for f in futures]
        assert all(r.ok for r in results)

        collector = falkon.dispatcher.spans
        submitted = {spec.task_id for spec in specs}
        for spec in specs:
            errors = collector.chain_errors(spec.task_id)
            assert not errors, errors
            chain = collector.chain(spec.task_id)
            starts = [s.start for s in chain]
            assert starts == sorted(starts)
        # No orphan spans: every buffered span maps back to a task we
        # submitted and to that task's own trace id.
        by_task = {spec.task_id: collector.chain(spec.task_id)[0].trace_id
                   for spec in specs}
        for span in collector.all_spans():
            assert span.task_id in submitted
            assert span.trace_id == by_task[span.task_id]
        # The run was not clean: the fault plan really dropped frames.
        assert plan.snapshot()["frames_dropped"] > 0


def test_v3_and_v4_executors_interoperate_under_frame_loss():
    """Satellite acceptance: one dispatcher serving a JSON-only (v3)
    executor and a binary (v4) executor side by side, under seeded
    frame loss.  Every task completes exactly-once-visible, trace
    chains stay intact, and the capability negotiation really split
    the fleet (one session flipped to binary framing, one stayed on
    JSON)."""
    from repro.live.client import LiveClient
    from repro.live.dispatcher import LiveDispatcher
    from repro.live.executor import LiveExecutor

    n_tasks = 120
    plan = FaultPlan(seed=SEED + 2, drop_rate=DROP_RATE)
    dispatcher = LiveDispatcher(
        heartbeat_interval=0.2,
        heartbeat_miss_budget=3,
        replay_timeout=0.75,
        max_retries=12,
        fault_plan=plan,
    )
    legacy = None
    modern = None
    client = None
    try:
        legacy = LiveExecutor(dispatcher.endpoint, heartbeat_interval=0.2,
                              pipeline=4, wire_binary=False).start()
        modern = LiveExecutor(dispatcher.endpoint, heartbeat_interval=0.2,
                              pipeline=4, wire_binary=True).start()
        legacy.wait_registered()
        modern.wait_registered()

        # Negotiation split the fleet: the v4 peer's sends flipped to
        # binary framing, the v3 peer's never did.
        assert modern._conn.wire_v4 is True
        assert legacy._conn.wire_v4 is False

        client = LiveClient(dispatcher.endpoint, bundle_size=40,
                            wire_binary=True)
        specs = [TaskSpec.sleep(0.0, task_id=f"interop-{i:04d}")
                 for i in range(n_tasks)]
        futures = client.submit(specs)
        results = [f.result(timeout=120.0) for f in futures]

        # Exactly-once-visible completion: one ok result per submitted
        # task, no duplicates, nothing lost, nothing failed.
        assert all(r.ok for r in results)
        assert sorted(r.task_id for r in results) == sorted(
            s.task_id for s in specs)
        stats = dispatcher.stats()
        assert stats.accepted == n_tasks
        assert stats.completed == n_tasks
        assert stats.failed == 0
        assert tasks_lost(stats) == 0

        # Both framings actually carried work.
        served = {r.executor_id for r in results}
        assert legacy.executor_id in served
        assert modern.executor_id in served

        # Trace chains survived the mixed fleet and the frame loss.
        for spec in specs:
            errors = dispatcher.spans.chain_errors(spec.task_id)
            assert not errors, errors
        assert plan.snapshot()["frames_dropped"] > 0
    finally:
        for peer in (client, legacy, modern):
            if peer is not None:
                peer.close() if isinstance(peer, LiveClient) else peer.stop()
        dispatcher.close()
