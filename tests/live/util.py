"""Shared helpers for live-plane tests.

``wait_until`` replaces fixed ``time.sleep`` waits with bounded
condition polling so the suite stays fast on idle machines and stable
on loaded ones.  ``RawPeer`` is a hand-driven protocol endpoint for
tests that need byte-level control (half-open sockets, mid-exchange
deaths) that the cooperative :class:`LiveExecutor` can't express.
"""

from __future__ import annotations

import socket
import time
from collections import deque
from typing import Callable, Optional

from repro.net.message import Message, MessageType
from repro.net.wire import FrameReader, encode_frame


def wait_until(
    condition: Callable[[], bool],
    timeout: float = 10.0,
    interval: float = 0.01,
) -> bool:
    """Poll *condition* until true or *timeout* elapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(interval)
    return bool(condition())


class RawPeer:
    """A synchronous, scriptable peer speaking the wire protocol."""

    def __init__(self, address: tuple[str, int], key: Optional[bytes] = None) -> None:
        self.sock = socket.create_connection(address, timeout=10.0)
        self.sock.settimeout(10.0)
        self.key = key
        self._reader = FrameReader(key=key)
        self._pending: deque[Message] = deque()

    def send(self, msg: Message) -> None:
        self.sock.sendall(encode_frame(msg.to_dict(), key=self.key))

    def recv(self, timeout: float = 5.0) -> Message:
        """Next inbound message; raises ``TimeoutError`` when none."""
        if self._pending:
            return self._pending.popleft()
        self.sock.settimeout(timeout)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("peer closed")
            for payload in self._reader.feed(chunk):
                self._pending.append(Message.from_dict(payload))
            if self._pending:
                return self._pending.popleft()
        raise TimeoutError("no message within timeout")

    def recv_until(self, mtype: MessageType, timeout: float = 5.0) -> Message:
        """Read messages, discarding others, until *mtype* arrives."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            msg = self.recv(timeout=max(0.05, deadline - time.monotonic()))
            if msg.type is mtype:
                return msg
        raise TimeoutError(f"no {mtype} within timeout")

    def register(self, executor_id: str) -> None:
        self.send(
            Message(
                MessageType.REGISTER,
                sender=executor_id,
                payload={"executor_id": executor_id},
            )
        )
        self.recv_until(MessageType.REGISTER_ACK)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
