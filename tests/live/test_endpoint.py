"""Endpoint: the typed falkon:// address and its deprecation shim."""

import warnings

import pytest

from repro.live.endpoint import Endpoint, EndpointLike, as_endpoint


class TestParsing:
    def test_url_form(self):
        ep = Endpoint.parse("falkon://10.0.0.1:9000")
        assert ep.host == "10.0.0.1"
        assert ep.port == 9000
        assert ep.url == "falkon://10.0.0.1:9000"

    def test_bare_host_port(self):
        assert Endpoint.parse("localhost:7000") == Endpoint("localhost", 7000)

    def test_parse_accepts_endpoint_and_tuple(self):
        ep = Endpoint("h", 1)
        assert Endpoint.parse(ep) is ep
        assert Endpoint.parse(("h", 1)) == ep

    def test_parse_list_comma_forms(self):
        eps = Endpoint.parse_list("falkon://a:1,b:2, falkon://c:3")
        assert eps == [Endpoint("a", 1), Endpoint("b", 2), Endpoint("c", 3)]

    def test_parse_list_accepts_iterables(self):
        eps = Endpoint.parse_list([Endpoint("a", 1), "b:2", ("c", 3)])
        assert eps == [Endpoint("a", 1), Endpoint("b", 2), Endpoint("c", 3)]

    @pytest.mark.parametrize("bad", [
        "", "nohost", "falkon://", "falkon://h:", "h:notaport",
        "http://h:1", "falkon://h:70000",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            Endpoint.parse(bad)


class TestTupleCompatibility:
    def test_iterates_like_a_pair(self):
        host, port = Endpoint("h", 9)
        assert (host, port) == ("h", 9)
        assert tuple(Endpoint("h", 9)) == ("h", 9)

    def test_address_property(self):
        assert Endpoint("h", 9).address == ("h", 9)

    def test_ordered_and_hashable(self):
        a, b = Endpoint("a", 1), Endpoint("b", 1)
        assert a < b
        assert len({a, b, Endpoint("a", 1)}) == 2


class TestTupleRemoval:
    """The (host, port) shim served its one-release deprecation window
    and is gone: constructor addresses must be Endpoints or URL
    strings, and tuples are rejected with a migration hint."""

    def test_tuple_raises_with_migration_hint(self):
        with pytest.raises(TypeError, match="no longer supported"):
            as_endpoint(("h", 5), owner="TestOwner")

    def test_endpoint_and_url_pass_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert as_endpoint(Endpoint("h", 5)) == Endpoint("h", 5)
            assert as_endpoint("falkon://h:5") == Endpoint("h", 5)
            assert as_endpoint("h:5") == Endpoint("h", 5)

    def test_non_address_raises(self):
        with pytest.raises(TypeError):
            as_endpoint(42)

    def test_live_client_accepts_endpoint_without_warning(self):
        from repro.live import LiveDispatcher, LiveClient

        disp = LiveDispatcher()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                client = LiveClient(disp.endpoint)
            client.close()
        finally:
            disp.close()

    def test_live_client_rejects_tuple(self):
        from repro.live import LiveDispatcher, LiveClient

        disp = LiveDispatcher()
        try:
            with pytest.raises(TypeError, match="no longer supported"):
                LiveClient(disp.address)
        finally:
            disp.close()
