"""The fleet health plane: ``/fleet`` aggregation over a federation
and the ``repro top --shards`` multi-shard view built on it.
"""

import json
import urllib.request

from repro.live.federation import LocalFederation
from repro.types import TaskSpec


def fetch(url: str, timeout: float = 5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.load(response)


def specs(n, seconds=0.0, prefix="fleet"):
    return [TaskSpec.sleep(seconds, task_id=f"{prefix}-{i:04d}")
            for i in range(n)]


class TestFleetEndpoint:
    def test_fleet_merges_every_shard_in_one_round_trip(self):
        with LocalFederation(shards=2, executors_per_shard=1,
                             monitor_interval=0.05, http_port=0) as fed:
            results = fed.run(specs(20), timeout=30)
            assert all(r.ok for r in results)
            base = fed.http.url("").rstrip("/")
            fleet = fetch(base + "/fleet")
        assert fleet["alive"] == 2
        assert fleet["total"] == 2
        assert fleet["degraded_shards"] == []
        assert set(fleet["shards"]) == {"s0", "s1"}
        for shard_id, status in fleet["shards"].items():
            assert status["alive"] is True
            assert status["shard_id"] == shard_id
            assert status["health"]["status"] == "ok"
            assert status["wire"] in ("v3", "v4")
        # Home-shard attribution: the aggregate counts each task once.
        assert fleet["aggregate"]["completed"] == 20
        assert fleet["aggregate"]["shards"] == 2
        # The steal matrix covers the full mesh, even with no steals.
        assert set(fleet["steals"]) == {"s0", "s1"}
        assert set(fleet["steals"]["s0"]) == {"s1"}
        assert {"requested", "received", "connected"} <= set(
            fleet["steals"]["s0"]["s1"])

    def test_fleet_marks_a_killed_shard_down(self):
        with LocalFederation(shards=2, executors_per_shard=1,
                             monitor_interval=0.05, http_port=0) as fed:
            fed.kill_shard("s1")
            base = fed.http.url("").rstrip("/")
            fleet = fetch(base + "/fleet")
            assert fleet["alive"] == 1
            assert fleet["shards"]["s1"] == {"alive": False}
            assert fleet["shards"]["s0"]["alive"] is True


class TestTopShards:
    def test_top_shards_renders_the_fleet_view(self, capsys):
        from repro.cli import main

        with LocalFederation(shards=2, executors_per_shard=1,
                             monitor_interval=0.05, http_port=0) as fed:
            results = fed.run(specs(12, prefix="top"), timeout=30)
            assert all(r.ok for r in results)
            base = fed.http.url("").rstrip("/")
            assert main(["top", "--shards", base, "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "fleet: 2/2 shards alive" in out
        assert "s0" in out and "s1" in out
        assert "SHARD" in out  # the per-shard table rendered

    def test_top_shards_comma_list_polls_each_status(self, capsys):
        from repro.cli import main

        with LocalFederation(shards=2, executors_per_shard=1,
                             monitor_interval=0.05, http_port=0) as fed:
            fed.run(specs(6, prefix="poll"), timeout=30)
            base = fed.http.url("").rstrip("/")
            second = fed.dispatchers["s1"].serve_http(port=0)
            urls = f"{base},{second.url('').rstrip('/')}"
            assert main(["top", "--shards", urls, "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "fleet: 2/2 shards alive" in out
        assert "s0" in out and "s1" in out

    def test_top_shards_comma_list_marks_unreachable_down(self, capsys):
        from repro.cli import main

        with LocalFederation(shards=1, executors_per_shard=1,
                             monitor_interval=0.05, http_port=0) as fed:
            base = fed.http.url("").rstrip("/")
            urls = f"{base},http://127.0.0.1:1"
            assert main(["top", "--shards", urls, "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "fleet: 1/2 shards alive" in out
        assert "DOWN" in out
