"""Unit tests for trace contexts and the span collector."""

import pytest

from repro.obs import SPAN_ORDER, SpanCollector, TraceContext


def record_full_attempt(collector, task_id, attempt=1, t0=0.0):
    """Record one complete protocol attempt starting at *t0*."""
    collector.record(task_id, "enqueue", t0 + 0.01, attempt=attempt)
    collector.record(task_id, "notify", t0 + 0.02, attempt=attempt)
    collector.record(task_id, "pull", t0 + 0.03, attempt=attempt)
    collector.record(task_id, "exec", t0 + 0.04, end=t0 + 0.05, attempt=attempt)
    collector.record(task_id, "result", t0 + 0.06, attempt=attempt, outcome="ok")
    collector.record(task_id, "ack", t0 + 0.07, attempt=attempt)


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext("tr-1-t", 7)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_from_wire_tolerates_junk(self):
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire({}) is None
        assert TraceContext.from_wire({"sid": 3}) is None


class TestSpanCollector:
    def test_begin_is_idempotent(self):
        c = SpanCollector()
        assert c.begin("t1") == c.begin("t1")

    def test_unknown_task_records_nothing(self):
        c = SpanCollector()
        assert c.record("ghost", "exec", 1.0) is None
        assert c.all_spans() == []

    def test_unknown_span_name_rejected(self):
        c = SpanCollector()
        c.begin("t1")
        with pytest.raises(ValueError):
            c.record("t1", "teleport", 1.0)

    def test_chain_parents_are_linear(self):
        c = SpanCollector()
        c.begin("t1")
        c.record("t1", "submit", 0.0)
        record_full_attempt(c, "t1")
        chain = c.chain("t1")
        assert [s.name for s in chain] == list(SPAN_ORDER)
        assert chain[0].parent_id is None
        for prev, cur in zip(chain, chain[1:]):
            assert cur.parent_id == prev.span_id

    def test_cross_clock_span_clamped_to_predecessor(self):
        c = SpanCollector()
        c.begin("t1")
        c.record("t1", "submit", 5.0)
        # An executor-measured window anchored before the predecessor
        # must be clamped, not allowed to rewind the chain.
        span_ctx = c.record("t1", "enqueue", 4.0, end=4.5)
        assert span_ctx is not None
        chain = c.chain("t1")
        assert chain[-1].start == 5.0
        assert chain[-1].end == 5.0

    def test_complete_single_attempt_chain(self):
        c = SpanCollector()
        c.begin("t1")
        c.record("t1", "submit", 0.0)
        record_full_attempt(c, "t1")
        assert c.chain_complete("t1")
        assert c.chain_errors("t1") == []

    def test_retry_settles_on_second_attempt(self):
        c = SpanCollector()
        c.begin("t1")
        c.record("t1", "submit", 0.0)
        # First attempt dies after pull (executor lost): no result.
        c.record("t1", "enqueue", 0.01, attempt=1)
        c.record("t1", "notify", 0.02, attempt=1)
        c.record("t1", "pull", 0.03, attempt=1)
        record_full_attempt(c, "t1", attempt=2, t0=1.0)
        assert c.chain_complete("t1")

    def test_missing_exec_is_reported(self):
        c = SpanCollector()
        c.begin("t1")
        c.record("t1", "submit", 0.0)
        c.record("t1", "enqueue", 0.01, attempt=1)
        c.record("t1", "notify", 0.02, attempt=1)
        c.record("t1", "pull", 0.03, attempt=1)
        c.record("t1", "result", 0.06, attempt=1)
        c.record("t1", "ack", 0.07, attempt=1)
        errors = c.chain_errors("t1")
        assert errors and "exec" in errors[0]
        assert not c.chain_complete("t1")

    def test_no_trace_is_an_error(self):
        c = SpanCollector()
        assert c.chain_errors("never-seen") == ["never-seen: no trace recorded"]

    def test_undelivered_requeue_same_attempt_is_legal(self):
        # A WORK send that fails inside the dispatcher re-enqueues the
        # task without charging the attempt, so enqueue/notify repeat
        # under the same attempt number before the chain settles.
        c = SpanCollector()
        c.begin("t1")
        c.record("t1", "submit", 0.0)
        c.record("t1", "enqueue", 0.01, attempt=1)
        c.record("t1", "notify", 0.02, attempt=1)
        c.record("t1", "enqueue", 0.03, attempt=1, reason="undelivered")
        record_full_attempt(c, "t1", attempt=1, t0=0.04)
        assert c.chain_complete("t1"), c.chain_errors("t1")

    def test_capacity_evicts_oldest_trace(self):
        c = SpanCollector(capacity=2)
        for task_id in ("t1", "t2", "t3"):
            c.begin(task_id)
        assert len(c) == 2
        assert c.task_ids() == ["t2", "t3"]
        assert c.traces_evicted == 1

    def test_context_tracks_latest_span(self):
        c = SpanCollector()
        c.begin("t1")
        c.record("t1", "submit", 0.0)
        ctx = c.record("t1", "enqueue", 0.01, attempt=1)
        assert c.context("t1") == ctx
        assert c.context("ghost") is None
