"""Unit tests for the typed metrics registry."""

import math
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_values,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("events")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter("events").inc(-1)

    def test_thread_safe_under_contention(self):
        c = Counter("events")

        def spin():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_callback_gauge_reads_live(self):
        backing = [1, 2, 3]
        g = Gauge("size", fn=lambda: len(backing))
        assert g.value == 3
        backing.append(4)
        assert g.value == 4


class TestHistogram:
    def test_empty_quantiles_are_nan(self):
        h = Histogram("lat")
        assert math.isnan(h.p50)
        assert math.isnan(h.mean)
        assert h.count == 0

    def test_quantiles_land_in_observed_range(self):
        h = Histogram("lat")
        values = [0.001 * i for i in range(1, 1001)]  # 1ms .. 1s
        for v in values:
            h.observe(v)
        assert h.count == 1000
        assert h.sum == pytest.approx(sum(values))
        # Bucketed estimates: generous tolerance, but must bracket.
        assert 0.3 <= h.p50 <= 0.7
        assert 0.8 <= h.p90 <= 1.0
        assert h.p99 <= max(values)
        assert min(values) <= h.quantile(0.0) <= h.quantile(1.0) <= max(values)

    def test_quantile_clamps_to_observed_extremes(self):
        h = Histogram("lat", buckets=[1.0, 10.0])
        h.observe(3.0)
        h.observe(4.0)
        assert 3.0 <= h.p50 <= 4.0

    def test_nan_observations_ignored(self):
        h = Histogram("lat")
        h.observe(math.nan)
        assert h.count == 0

    def test_bucket_counts_are_cumulative(self):
        h = Histogram("lat", buckets=[1.0, 2.0])
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        pairs = h.bucket_counts()
        assert pairs[0] == (1.0, 1)
        assert pairs[1] == (2.0, 2)
        assert pairs[-1][0] == math.inf
        assert pairs[-1][1] == 3


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry(prefix="test")
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h") is r.histogram("h")

    def test_kind_collision_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")

    def test_snapshot_is_prefixed_and_flat(self):
        r = MetricsRegistry(prefix="disp")
        r.counter("accepted").inc(3)
        r.histogram("lat").observe(0.5)
        snap = r.snapshot()
        assert snap["disp_accepted"] == 3
        assert snap["disp_lat_count"] == 1
        assert snap["disp_lat_sum"] == pytest.approx(0.5)
        assert "disp_lat_p99" in snap

    def test_unprefixed_snapshot_keys_are_bare(self):
        r = MetricsRegistry()
        r.counter("n").inc()
        assert list(r.snapshot()) == ["n"]


class TestQuantileFromValues:
    def test_empty_is_nan(self):
        assert math.isnan(quantile_from_values([], 0.5))

    def test_exact_median(self):
        assert quantile_from_values([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_interpolates(self):
        assert quantile_from_values([0.0, 1.0], 0.5) == pytest.approx(0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantile_from_values([1.0], 1.5)
