"""Watchdog primitives: stall detection semantics, contended-lock
timing, and the named-check panel.

The stall detector's suppression rules are the contract that matters:
a detector that cries wolf on a paused queue or a sleep-heavy
workload would train operators to ignore ``degraded``.
"""

import threading
import time

import pytest

from repro.obs.watchdog import StallDetector, TimedLock, WatchdogPanel


class TestStallDetector:
    def test_trips_only_after_stall_after_of_true_silence(self):
        detector = StallDetector(stall_after=5.0)
        assert detector.observe(100.0, depth=3, progress=7, idle=2) is None
        assert detector.observe(104.0, depth=3, progress=7, idle=2) is None
        reason = detector.observe(105.5, depth=3, progress=7, idle=2)
        assert reason is not None and "queue stalled" in reason
        assert detector.stalled_for == pytest.approx(5.5)

    def test_empty_queue_suppresses(self):
        """A paused-but-empty queue is not a stall."""
        detector = StallDetector(stall_after=5.0)
        detector.observe(100.0, depth=0, progress=7, idle=2)
        # Hours of depth-0 silence, then work appears: the timer must
        # have been resetting all along.
        detector.observe(7200.0, depth=0, progress=7, idle=2)
        assert detector.observe(7201.0, depth=3, progress=7, idle=2) is None
        assert detector.stalled_for == 0.0

    def test_all_executors_busy_suppresses(self):
        """Sleep-heavy workload: queue deep, zero idle — backpressure,
        not a stall."""
        detector = StallDetector(stall_after=5.0)
        for t in (100.0, 110.0, 120.0):
            assert detector.observe(t, depth=50, progress=7, idle=0) is None
        assert detector.stalled_for == 0.0

    def test_progress_movement_suppresses(self):
        detector = StallDetector(stall_after=5.0)
        for i, t in enumerate((100.0, 110.0, 120.0)):
            assert detector.observe(t, depth=50, progress=7 + i, idle=2) is None

    def test_recovery_resets_the_timer(self):
        detector = StallDetector(stall_after=5.0)
        detector.observe(100.0, depth=3, progress=7, idle=2)
        assert detector.observe(106.0, depth=3, progress=7, idle=2) is not None
        # One dispatch happens: healthy again, timer restarts.
        assert detector.observe(107.0, depth=3, progress=8, idle=2) is None
        assert detector.stalled_for == 0.0
        assert detector.observe(111.0, depth=3, progress=8, idle=2) is None

    def test_reset_forgets_everything(self):
        detector = StallDetector(stall_after=5.0)
        detector.observe(100.0, depth=3, progress=7, idle=2)
        detector.observe(106.0, depth=3, progress=7, idle=2)
        detector.reset()
        assert detector.stalled_for == 0.0
        assert detector.observe(200.0, depth=3, progress=7, idle=2) is None

    def test_stall_after_must_be_positive(self):
        with pytest.raises(ValueError):
            StallDetector(stall_after=0)


class TestTimedLock:
    def test_uncontended_acquire_counts_nothing(self):
        lock = TimedLock()
        with lock:
            pass
        assert lock.contended == 0
        assert lock.max_wait_s == 0.0

    def test_contended_acquire_records_the_wait(self):
        lock = TimedLock()
        held = threading.Event()

        def hold():
            with lock:
                held.set()
                time.sleep(0.05)

        thread = threading.Thread(target=hold)
        thread.start()
        held.wait(timeout=5)
        with lock:
            pass
        thread.join()
        assert lock.contended == 1
        assert lock.max_wait_s > 0.0

    def test_drain_returns_and_resets_the_high_water(self):
        lock = TimedLock()
        lock.max_wait_s = 0.25
        assert lock.drain() == 0.25
        assert lock.max_wait_s == 0.0
        assert lock.drain() == 0.0

    def test_nonblocking_miss_reports_false_without_timing(self):
        lock = TimedLock()
        assert lock.acquire()
        try:
            assert lock.acquire(blocking=False) is False
            assert lock.contended == 0
        finally:
            lock.release()

    def test_locked_mirrors_state(self):
        lock = TimedLock()
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()


class TestWatchdogPanel:
    def test_reasons_collects_only_degraded_checks(self):
        panel = WatchdogPanel()
        panel.add("healthy", lambda: None)
        panel.add("stalled", lambda: "queue stalled: 3 queued")
        assert panel.names() == ["healthy", "stalled"]
        assert panel.reasons() == ["queue stalled: 3 queued"]

    def test_raising_check_reads_as_degraded_not_healthy(self):
        panel = WatchdogPanel()

        def broken():
            raise RuntimeError("probe exploded")

        panel.add("broken", broken)
        reasons = panel.reasons()
        assert len(reasons) == 1
        assert "watchdog 'broken' failed" in reasons[0]
        assert "probe exploded" in reasons[0]

    def test_empty_panel_is_healthy(self):
        assert WatchdogPanel().reasons() == []
