"""Event log tests: emission, streaming, tolerant reads, replay."""

import json

from repro.obs import EventLog, read_events_jsonl, replay_summary
from repro.obs import events as ev


class TestEmission:
    def test_emit_records_both_clocks_and_attrs(self):
        log = EventLog()
        event = log.emit(ev.TASK_SUBMIT, "t-1", client="c-1", bundle=3)
        assert event.kind == "task-submit"
        assert event.subject == "t-1"
        assert event.t_mono > 0 and event.t_wall > 0
        assert event.get("client") == "c-1"
        assert event.get("missing", "d") == "d"
        assert len(log) == 1

    def test_disabled_log_is_a_null_object(self):
        log = EventLog(enabled=False)
        assert log.emit(ev.TASK_SUBMIT, "t-1") is None
        assert len(log) == 0
        assert log.events() == []
        log.close()  # no-op, no error

    def test_ring_is_bounded(self):
        log = EventLog(capacity=10)
        for i in range(25):
            log.emit(ev.TASK_SETTLE, f"t-{i}", outcome="ok")
        assert len(log) == 10
        assert log.events()[0].subject == "t-15"


class TestJsonlStreaming:
    def test_streams_each_event_as_one_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path)
        log.emit(ev.EXECUTOR_REGISTER, "e-1", pipeline=4)
        log.emit(ev.TASK_SUBMIT, "t-1")
        log.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["kind"] for r in rows] == ["executor-register", "task-submit"]
        assert rows[0]["attrs"] == {"pipeline": 4}

    def test_read_back_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path)
        emitted = [log.emit(ev.TASK_SUBMIT, f"t-{i}") for i in range(3)]
        log.close()
        assert read_events_jsonl(path) == emitted

    def test_read_tolerates_blank_and_truncated_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path)
        log.emit(ev.TASK_SUBMIT, "t-0")
        log.emit(ev.TASK_SETTLE, "t-0", outcome="ok")
        log.close()
        # A crashed writer leaves a half record; a human leaves noise.
        with open(path, "a") as fh:
            fh.write("\n")
            fh.write('{"kind": "task-subm')
        events = read_events_jsonl(path)
        assert [e.kind for e in events] == ["task-submit", "task-settle"]

    def test_dump_is_atomic_and_complete(self, tmp_path):
        log = EventLog(capacity=100)
        for i in range(5):
            log.emit(ev.TASK_SUBMIT, f"t-{i}")
        path = tmp_path / "dump.jsonl"
        assert log.dump(path) == 5
        assert read_events_jsonl(path) == log.events()
        assert [p.name for p in tmp_path.iterdir()] == ["dump.jsonl"]


class TestReplaySummary:
    def test_summary_reconstructs_the_timeline(self):
        log = EventLog()
        log.emit(ev.EXECUTOR_REGISTER, "e-1")
        log.emit(ev.EXECUTOR_REGISTER, "e-2")
        for i in range(4):
            log.emit(ev.TASK_SUBMIT, f"t-{i}")
        log.emit(ev.TASK_RETRY, "t-2", reason="executor e-2 lost")
        log.emit(ev.EXECUTOR_DROP, "e-2", reason="connection-closed")
        for i in range(4):
            log.emit(ev.TASK_SETTLE, f"t-{i}",
                     outcome="ok" if i != 3 else "fail")
        summary = replay_summary(log.events())
        assert summary["submitted"] == 4
        assert summary["settled"] == 4
        assert summary["outcomes"] == {"fail": 1, "ok": 3}
        assert summary["retries"] == 1
        assert summary["executors_registered"] == 2
        assert summary["executors_dropped"] == 1
        assert summary["duration_s"] >= 0
        assert summary["kinds"]["task-submit"] == 4

    def test_empty_stream(self):
        summary = replay_summary([])
        assert summary["events"] == 0
        assert summary["throughput_tasks_per_s"] is None
        assert summary["wall_start"] is None
