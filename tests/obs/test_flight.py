"""Flight recorder unit tests: ring semantics, dump format, loaders."""

import json
import os

import pytest

from repro.obs.flight import (
    FLIGHT_DUMP_VERSION,
    FRAME_RX,
    FRAME_TX,
    QUEUE_ENQUEUE,
    FlightRecorder,
    events_between,
    flight_dump_path,
    load_flight_dumps,
    read_flight_dump,
)


class TestRing:
    def test_ring_is_bounded_oldest_falls_off(self):
        recorder = FlightRecorder("dispatcher", capacity=3)
        for i in range(5):
            recorder.record(QUEUE_ENQUEUE, f"t-{i}")
        assert len(recorder) == 3
        assert [e[2] for e in recorder.snapshot()] == ["t-2", "t-3", "t-4"]

    def test_disabled_recorder_records_nothing(self):
        recorder = FlightRecorder("dispatcher", enabled=False)
        recorder.record(FRAME_RX, "SUBMIT")
        assert len(recorder) == 0

    def test_attrs_ride_along_and_hot_path_stores_none(self):
        recorder = FlightRecorder("dispatcher")
        recorder.record(FRAME_TX, "WORK", tasks=7)
        recorder.record(FRAME_RX, "RESULT")
        with_attrs, without = recorder.snapshot()
        assert with_attrs[3] == {"tasks": 7}
        assert without[3] is None  # no dict allocated on the hot path

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder("dispatcher", capacity=0)

    def test_clear_empties_the_ring(self):
        recorder = FlightRecorder("dispatcher")
        recorder.record(FRAME_RX, "SUBMIT")
        recorder.clear()
        assert len(recorder) == 0


class TestDump:
    def test_dump_read_roundtrip(self, tmp_path):
        recorder = FlightRecorder("dispatcher", shard_id="shard-0")
        recorder.record(QUEUE_ENQUEUE, "t-1")
        recorder.record(FRAME_TX, "WORK", tasks=1)
        path = str(tmp_path / "flight.json")
        assert recorder.dump(path, reason="manual",
                             extra={"queued": ["t-1"]}) == path
        payload = read_flight_dump(path)
        assert payload["version"] == FLIGHT_DUMP_VERSION
        assert payload["component"] == "dispatcher"
        assert payload["shard_id"] == "shard-0"
        assert payload["reason"] == "manual"
        assert payload["extra"] == {"queued": ["t-1"]}
        assert payload["path"] == path
        # Monotonic event stamps align to wall time via the offset.
        assert payload["wall_minus_mono"] == pytest.approx(
            payload["t_wall"] - payload["t_mono"])
        kinds = [e["kind"] for e in payload["events"]]
        assert kinds == [QUEUE_ENQUEUE, FRAME_TX]
        assert payload["events"][1]["tasks"] == 1

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "flight-old.json"
        path.write_text(json.dumps({"version": 99, "events": []}))
        with pytest.raises(ValueError, match="version"):
            read_flight_dump(str(path))

    def test_dump_to_dir_folds_shard_into_filename(self, tmp_path):
        a = FlightRecorder("dispatcher", shard_id="shard-0")
        b = FlightRecorder("dispatcher", shard_id="shard-1")
        path_a = a.dump_to_dir(str(tmp_path), reason="crash")
        path_b = b.dump_to_dir(str(tmp_path), reason="crash")
        assert path_a != path_b
        assert "shard-0" in os.path.basename(path_a)
        assert "shard-1" in os.path.basename(path_b)

    def test_flight_dump_path_sanitizes_component(self, tmp_path):
        path = flight_dump_path(str(tmp_path), "executor:bench/0", "manual")
        assert ":" not in os.path.basename(path)
        assert "/" not in os.path.basename(path)[1:]

    def test_load_dumps_from_directory_skips_junk(self, tmp_path):
        FlightRecorder("client").dump_to_dir(str(tmp_path))
        FlightRecorder("executor").dump_to_dir(str(tmp_path))
        (tmp_path / "flight-junk-x-0-0.json").write_text("{truncated")
        (tmp_path / "notes.txt").write_text("not a dump")
        dumps = load_flight_dumps(str(tmp_path))
        assert sorted(d["component"] for d in dumps) == ["client", "executor"]

    def test_load_single_file_raises_on_garbage(self, tmp_path):
        path = tmp_path / "flight-bad.json"
        path.write_text("{truncated")
        with pytest.raises(json.JSONDecodeError):
            load_flight_dumps(str(path))

    def test_events_between_filters_on_monotonic_stamp(self, tmp_path):
        recorder = FlightRecorder("dispatcher")
        recorder.record(FRAME_RX, "SUBMIT")
        path = recorder.dump(str(tmp_path / "f.json"))
        dump = read_flight_dump(path)
        t = dump["events"][0]["t"]
        assert list(events_between(dump, t - 1, t + 1)) == dump["events"]
        assert list(events_between(dump, t + 1)) == []
