"""Exporter tests: Prometheus text and JSONL round-trips."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    SpanCollector,
    atomic_writer,
    dump_observability,
    read_spans_jsonl,
    render_prometheus,
    write_metrics_jsonl,
    write_spans_jsonl,
)
from repro.obs.stats import DispatcherStats, ExecutorStats, ProvisionerStats


def make_registry():
    r = MetricsRegistry(prefix="disp")
    r.counter("accepted", help="Tasks accepted").inc(7)
    r.gauge("queued").set(3)
    h = r.histogram("lat", buckets=[0.1, 1.0])
    h.observe(0.05)
    h.observe(0.5)
    return r


def make_collector():
    c = SpanCollector()
    c.begin("t1")
    c.record("t1", "submit", 0.0, client="c1")
    c.record("t1", "enqueue", 0.01, attempt=1)
    return c


class TestPrometheus:
    def test_counter_gauge_histogram_exposition(self):
        text = render_prometheus(make_registry())
        # Counters carry the conventional _total suffix on every line
        # of the family (HELP, TYPE, sample).
        assert "# HELP falkon_disp_accepted_total Tasks accepted" in text
        assert "# TYPE falkon_disp_accepted_total counter" in text
        assert "falkon_disp_accepted_total 7" in text
        assert "# TYPE falkon_disp_queued gauge" in text
        assert "# TYPE falkon_disp_lat histogram" in text
        assert 'falkon_disp_lat_bucket{le="0.1"} 1' in text
        assert 'falkon_disp_lat_bucket{le="1.0"} 2' in text
        assert 'falkon_disp_lat_bucket{le="+Inf"} 2' in text
        assert "falkon_disp_lat_count 2" in text

    def test_multiple_registries_keep_distinct_prefixes(self):
        a = MetricsRegistry(prefix="dispatcher")
        a.counter("n").inc()
        b = MetricsRegistry(prefix="executor")
        b.counter("n").inc(2)
        text = render_prometheus(a, b)
        assert "falkon_dispatcher_n_total 1" in text
        assert "falkon_executor_n_total 2" in text

    def test_exposition_parses_as_format_0_0_4(self):
        """Structural conformance: parse the rendered text the way a
        scraper would and check the invariants the format promises."""
        text = render_prometheus(make_registry())
        assert text.endswith("\n")
        types: dict[str, str] = {}
        samples: dict[str, float] = {}
        for line in text.splitlines():
            assert line == line.strip()  # no stray indentation
            if line.startswith("# TYPE "):
                _, _, name, mtype = line.split(" ", 3)
                assert mtype in ("counter", "gauge", "histogram")
                assert name not in types, "duplicate TYPE line"
                types[name] = mtype
                continue
            if line.startswith("# HELP "):
                continue
            assert not line.startswith("#"), f"unknown comment: {line}"
            name_and_labels, value = line.rsplit(" ", 1)
            name = name_and_labels.split("{", 1)[0]
            samples[name_and_labels] = float(value)
            # Every sample belongs to a declared family.
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    base = name[: -len(suffix)]
            assert base in types, f"sample {name} has no TYPE declaration"
        # Counter families end in _total; histogram buckets are
        # cumulative and close with +Inf == _count.
        for name, mtype in types.items():
            if mtype == "counter":
                assert name.endswith("_total")
            if mtype == "histogram":
                buckets = [
                    (labels, value) for labels, value in samples.items()
                    if labels.startswith(f"{name}_bucket{{")
                ]
                values = [value for _, value in buckets]
                assert values == sorted(values), "buckets must be cumulative"
                inf = next(v for l, v in buckets if 'le="+Inf"' in l)
                assert inf == samples[f"{name}_count"]


class TestJsonl:
    def test_span_round_trip(self, tmp_path):
        collector = make_collector()
        path = tmp_path / "spans.jsonl"
        written = write_spans_jsonl(path, collector)
        assert written == 2
        spans = read_spans_jsonl(path)
        assert spans == collector.all_spans()
        assert spans[0].get("client") == "c1"

    def test_metrics_jsonl_nan_becomes_null(self, tmp_path):
        r = MetricsRegistry(prefix="disp")
        r.histogram("lat")  # empty: p50 is NaN
        path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(path, r)
        rows = {row["name"]: row["value"]
                for row in map(json.loads, path.read_text().splitlines())}
        assert rows["disp_lat_p50"] is None
        assert rows["disp_lat_count"] == 0

    def test_dump_observability_writes_all_three(self, tmp_path):
        out = tmp_path / "obs"
        paths = dump_observability(out, [make_registry()], make_collector())
        names = sorted(p.rsplit("/", 1)[-1] for p in paths)
        assert names == ["metrics.jsonl", "metrics.prom", "spans.jsonl"]
        for p in paths:
            assert (tmp_path / "obs" / p.rsplit("/", 1)[-1]).exists()


class TestAtomicWrites:
    def test_interrupted_write_preserves_previous_file(self, tmp_path):
        """A writer that dies mid-write must leave the old dump intact
        and no temp litter behind."""
        path = tmp_path / "metrics.jsonl"
        path.write_text('{"name": "good", "value": 1}\n')

        class Boom(RuntimeError):
            pass

        def rows():
            yield {"name": "partial", "value": 2}
            raise Boom("crash mid-dump")

        from repro.obs.exporters import _write_lines

        with pytest.raises(Boom):
            _write_lines(path, rows())
        assert path.read_text() == '{"name": "good", "value": 1}\n'
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.jsonl"]

    def test_atomic_writer_interrupt_mid_stream(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("previous\n")
        with pytest.raises(KeyboardInterrupt):
            with atomic_writer(path) as fh:
                fh.write("half a line")
                raise KeyboardInterrupt  # even BaseException cleans up
        assert path.read_text() == "previous\n"
        assert list(tmp_path.iterdir()) == [path]

    def test_atomic_writer_success_replaces(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old\n")
        with atomic_writer(path) as fh:
            fh.write("new\n")
        assert path.read_text() == "new\n"
        assert list(tmp_path.iterdir()) == [path]


class TestTypedStats:
    def test_dispatcher_stats_round_trip_ignores_unknown_keys(self):
        stats = DispatcherStats(queued=2, accepted=5, completed=3)
        data = dict(stats.as_dict(), future_field=1)
        parsed = DispatcherStats.from_dict(data)
        assert parsed.queued == 2
        assert parsed.accepted == 5

    def test_mapping_shim(self):
        stats = DispatcherStats(queued=4)
        assert stats["queued"] == 4
        assert stats.get("missing", -1) == -1
        assert "queued" in stats
        assert set(stats.keys()) == set(stats.as_dict())

    def test_executor_and_provisioner_snapshots(self):
        e = ExecutorStats(executor_id="x1", tasks_executed=9)
        assert e.as_dict()["tasks_executed"] == 9
        p = ProvisionerStats(pool_size=2, allocations=5)
        assert p["allocations"] == 5
