"""Exporter tests: Prometheus text and JSONL round-trips."""

import json

from repro.obs import (
    MetricsRegistry,
    SpanCollector,
    dump_observability,
    read_spans_jsonl,
    render_prometheus,
    write_metrics_jsonl,
    write_spans_jsonl,
)
from repro.obs.stats import DispatcherStats, ExecutorStats, ProvisionerStats


def make_registry():
    r = MetricsRegistry(prefix="disp")
    r.counter("accepted", help="Tasks accepted").inc(7)
    r.gauge("queued").set(3)
    h = r.histogram("lat", buckets=[0.1, 1.0])
    h.observe(0.05)
    h.observe(0.5)
    return r


def make_collector():
    c = SpanCollector()
    c.begin("t1")
    c.record("t1", "submit", 0.0, client="c1")
    c.record("t1", "enqueue", 0.01, attempt=1)
    return c


class TestPrometheus:
    def test_counter_gauge_histogram_exposition(self):
        text = render_prometheus(make_registry())
        assert "# HELP falkon_disp_accepted Tasks accepted" in text
        assert "# TYPE falkon_disp_accepted counter" in text
        assert "falkon_disp_accepted 7" in text
        assert "# TYPE falkon_disp_queued gauge" in text
        assert "# TYPE falkon_disp_lat histogram" in text
        assert 'falkon_disp_lat_bucket{le="0.1"} 1' in text
        assert 'falkon_disp_lat_bucket{le="1.0"} 2' in text
        assert 'falkon_disp_lat_bucket{le="+Inf"} 2' in text
        assert "falkon_disp_lat_count 2" in text

    def test_multiple_registries_keep_distinct_prefixes(self):
        a = MetricsRegistry(prefix="dispatcher")
        a.counter("n").inc()
        b = MetricsRegistry(prefix="executor")
        b.counter("n").inc(2)
        text = render_prometheus(a, b)
        assert "falkon_dispatcher_n 1" in text
        assert "falkon_executor_n 2" in text


class TestJsonl:
    def test_span_round_trip(self, tmp_path):
        collector = make_collector()
        path = tmp_path / "spans.jsonl"
        written = write_spans_jsonl(path, collector)
        assert written == 2
        spans = read_spans_jsonl(path)
        assert spans == collector.all_spans()
        assert spans[0].get("client") == "c1"

    def test_metrics_jsonl_nan_becomes_null(self, tmp_path):
        r = MetricsRegistry(prefix="disp")
        r.histogram("lat")  # empty: p50 is NaN
        path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(path, r)
        rows = {row["name"]: row["value"]
                for row in map(json.loads, path.read_text().splitlines())}
        assert rows["disp_lat_p50"] is None
        assert rows["disp_lat_count"] == 0

    def test_dump_observability_writes_all_three(self, tmp_path):
        out = tmp_path / "obs"
        paths = dump_observability(out, [make_registry()], make_collector())
        names = sorted(p.rsplit("/", 1)[-1] for p in paths)
        assert names == ["metrics.jsonl", "metrics.prom", "spans.jsonl"]
        for p in paths:
            assert (tmp_path / "obs" / p.rsplit("/", 1)[-1]).exists()


class TestTypedStats:
    def test_dispatcher_stats_round_trip_ignores_unknown_keys(self):
        stats = DispatcherStats(queued=2, accepted=5, completed=3)
        data = dict(stats.as_dict(), future_field=1)
        parsed = DispatcherStats.from_dict(data)
        assert parsed.queued == 2
        assert parsed.accepted == 5

    def test_mapping_shim(self):
        stats = DispatcherStats(queued=4)
        assert stats["queued"] == 4
        assert stats.get("missing", -1) == -1
        assert "queued" in stats
        assert set(stats.keys()) == set(stats.as_dict())

    def test_executor_and_provisioner_snapshots(self):
        e = ExecutorStats(executor_id="x1", tasks_executed=9)
        assert e.as_dict()["tasks_executed"] == 9
        p = ProvisionerStats(pool_size=2, allocations=5)
        assert p["allocations"] == 5
