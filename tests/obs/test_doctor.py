"""``repro doctor`` analyzer tests on hand-built dump fixtures.

The fixtures are authored JSON rather than recorder output so the
monotonic stamps and wall offsets are exact: cross-dump correlation
is all clock arithmetic, and approximate fixtures would hide
off-by-an-epoch bugs.
"""

import json

from repro.obs.doctor import analyze, doctor_main, render_report
from repro.obs.flight import FLIGHT_DUMP_VERSION


def write_dump(directory, name, *, component="dispatcher", shard_id=None,
               reason="manual", t_mono=1000.0, t_wall=5000.0,
               extra=None, events=()):
    payload = {
        "version": FLIGHT_DUMP_VERSION,
        "component": component,
        "shard_id": shard_id,
        "reason": reason,
        "t_mono": t_mono,
        "t_wall": t_wall,
        "wall_minus_mono": t_wall - t_mono,
        "extra": extra or {},
        "events": list(events),
    }
    path = directory / f"flight-{name}.json"
    path.write_text(json.dumps(payload) + "\n")
    return str(path)


def crash_fixture(tmp_path):
    """A killed shard plus its restarted successor, one task resolved."""
    write_dump(
        tmp_path, "dead", shard_id="shard-0", reason="crash",
        t_mono=1000.0, t_wall=5000.0,
        extra={"inflight": ["t-1"], "queued": ["t-2"]},
        events=[
            {"t": 998.0, "kind": "frame.rx", "subject": "HEARTBEAT"},
            {"t": 998.5, "kind": "queue.enq", "subject": "t-1"},
            {"t": 999.0, "kind": "queue.claim", "subject": "t-1"},
            {"t": 999.5, "kind": "queue.enq", "subject": "t-2"},
        ])
    # The restart runs in a fresh process: different monotonic epoch,
    # later wall clock.  It re-ran t-1 to completion 10s after the
    # crash; t-2 never settled anywhere.
    write_dump(
        tmp_path, "reborn", shard_id="shard-0", reason="end",
        t_mono=500.0, t_wall=5050.0,
        events=[
            {"t": 498.0, "kind": "frame.rx", "subject": "HEARTBEAT"},
            {"t": 460.0, "kind": "task.settle", "subject": "t-1",
             "outcome": "ok"},
        ])


class TestAnalyze:
    def test_crashed_dump_lists_open_tasks_from_extra(self, tmp_path):
        crash_fixture(tmp_path)
        report = analyze(str(tmp_path))
        assert len(report["crashed"]) == 1
        crashed = report["crashed"][0]
        assert crashed["shard_id"] == "shard-0"
        assert crashed["reason"] == "crash"
        assert crashed["open_tasks"] == {"t-1": "dispatched", "t-2": "queued"}

    def test_resolution_correlates_across_monotonic_epochs(self, tmp_path):
        crash_fixture(tmp_path)
        report = analyze(str(tmp_path))
        by_task = {r["task_id"]: r for r in report["resolutions"]}
        resolved = by_task["t-1"]
        assert resolved["outcome"] == "ok"
        assert resolved["resolved_by"] == "dispatcher[shard-0]"
        # settle at mono 460 in the reborn epoch = wall 5010, crash at
        # wall 5000: the doctor aligns on wall time, not raw mono.
        assert resolved["after_crash_s"] == 10.0
        assert by_task["t-2"]["outcome"] == "unresolved"

    def test_never_settled_task_flags_a_stuck_gap(self, tmp_path):
        crash_fixture(tmp_path)
        report = analyze(str(tmp_path))
        stuck = [g for g in report["gaps"] if g["kind"] == "stuck-task"]
        assert len(stuck) == 1
        assert "t-2" in stuck[0]["detail"]

    def test_open_tasks_fall_back_to_event_replay(self, tmp_path):
        write_dump(
            tmp_path, "noextra", reason="sigterm",
            events=[
                {"t": 999.0, "kind": "queue.enq", "subject": "t-9"},
                {"t": 999.2, "kind": "queue.claim", "subject": "t-9"},
                {"t": 999.4, "kind": "queue.enq", "subject": "t-10"},
                {"t": 999.5, "kind": "queue.claim", "subject": "t-10"},
                {"t": 999.6, "kind": "task.settle", "subject": "t-10",
                 "outcome": "ok"},
            ])
        report = analyze(str(tmp_path))
        assert report["crashed"][0]["open_tasks"] == {"t-9": "dispatched"}

    def test_frame_silence_gap(self, tmp_path):
        write_dump(
            tmp_path, "quiet", t_mono=1000.0,
            events=[{"t": 980.0, "kind": "frame.rx", "subject": "SUBMIT"},
                    {"t": 999.0, "kind": "loop.iter", "subject": "io-0"}])
        report = analyze(str(tmp_path))
        gaps = [g for g in report["gaps"] if g["kind"] == "frame-silence"]
        assert len(gaps) == 1
        assert "20.0s before dump" in gaps[0]["detail"]

    def test_heartbeat_silence_gap_on_dispatcher_dumps_only(self, tmp_path):
        write_dump(
            tmp_path, "nohb", t_mono=1000.0,
            events=[{"t": 999.0, "kind": "frame.rx", "subject": "SUBMIT"}])
        write_dump(
            tmp_path, "exec", component="executor:x", t_mono=1000.0,
            events=[{"t": 999.0, "kind": "frame.rx", "subject": "WORK"}])
        report = analyze(str(tmp_path))
        gaps = [g for g in report["gaps"] if g["kind"] == "heartbeat-silence"]
        assert [g["label"] for g in gaps] == ["dispatcher"]

    def test_window_excludes_old_events(self, tmp_path):
        write_dump(
            tmp_path, "old", t_mono=1000.0,
            events=[{"t": 100.0, "kind": "frame.rx", "subject": "SUBMIT"},
                    {"t": 999.0, "kind": "frame.rx", "subject": "HEARTBEAT"}])
        report = analyze(str(tmp_path), window_s=30.0)
        assert report["dumps"][0]["events_in_window"] == 1
        assert report["dumps"][0]["kinds"] == {"frame.rx": 1}


class TestRendering:
    def test_render_report_covers_crash_and_resolutions(self, tmp_path):
        crash_fixture(tmp_path)
        text = render_report(analyze(str(tmp_path)))
        assert "crashed components:" in text
        assert "[dispatcher[shard-0]] crash with 2 task(s) in flight" in text
        assert "t-1: dispatched at death -> ok by dispatcher[shard-0]" in text
        assert "t-2: queued at death -> UNRESOLVED" in text

    def test_render_healthy_run_says_so(self, tmp_path):
        write_dump(tmp_path, "fine", reason="end",
                   events=[{"t": 999.0, "kind": "frame.rx",
                            "subject": "HEARTBEAT"}])
        assert "no crashes or gaps detected" in render_report(
            analyze(str(tmp_path)))

    def test_doctor_main_json_mode_is_parseable(self, tmp_path):
        crash_fixture(tmp_path)
        report = json.loads(doctor_main(str(tmp_path), as_json=True))
        assert report["crashed"][0]["shard_id"] == "shard-0"


class TestDoctorCli:
    def test_repro_doctor_renders_a_dump_directory(self, tmp_path, capsys):
        from repro.cli import main

        crash_fixture(tmp_path)
        assert main(["doctor", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "repro doctor" in out
        assert "crashed components:" in out
        assert "t-1" in out

    def test_repro_doctor_json_flag(self, tmp_path, capsys):
        from repro.cli import main

        crash_fixture(tmp_path)
        assert main(["doctor", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["crashed"][0]["reason"] == "crash"

    def test_repro_doctor_missing_path_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["doctor", str(tmp_path / "nope")]) == 2
        assert "--flight-out" in capsys.readouterr().err
