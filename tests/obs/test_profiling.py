"""``profile_all_threads`` contract tests.

The harness exists because cProfile is per-thread: the bench's hot
path runs on IOLoop and executor threads, so the bootstrap hook must
catch every thread *started inside* the block, while the documented
limitation — threads already running at entry are invisible — stays
true (callers must start the workload inside the block).
"""

import pstats
import threading

from repro.obs.profiling import print_top, profile_all_threads


def _marker_main():
    return sum(range(50))


def _marker_worker():
    return sum(range(50))


def _marker_preexisting():
    return sum(range(50))


def _profiled_functions(stats: pstats.Stats) -> set:
    return {func_name for _file, _line, func_name in stats.stats}


class TestProfileAllThreads:
    def test_calling_thread_is_profiled(self):
        with profile_all_threads() as collect:
            _marker_main()
        stats = collect()
        assert isinstance(stats, pstats.Stats)
        assert "_marker_main" in _profiled_functions(stats)

    def test_threads_started_inside_the_block_are_profiled(self):
        with profile_all_threads() as collect:
            worker = threading.Thread(target=_marker_worker)
            worker.start()
            worker.join()
        merged = _profiled_functions(collect())
        # One Stats merges both the caller and the worker thread.
        assert "_marker_worker" in merged
        assert "_marker_main" not in merged  # not called this time

    def test_merged_stats_fold_both_threads_into_one_object(self):
        with profile_all_threads() as collect:
            _marker_main()
            worker = threading.Thread(target=_marker_worker)
            worker.start()
            worker.join()
        merged = _profiled_functions(collect())
        assert {"_marker_main", "_marker_worker"} <= merged

    def test_preexisting_threads_are_not_captured(self):
        """The documented limitation: a thread already running when the
        block is entered keeps its un-instrumented profile function."""
        go = threading.Event()
        done = threading.Event()

        def loiterer():
            go.wait(timeout=10)
            _marker_preexisting()
            done.set()

        thread = threading.Thread(target=loiterer)
        thread.start()  # running before the block begins
        try:
            with profile_all_threads() as collect:
                go.set()
                assert done.wait(timeout=10)
            assert "_marker_preexisting" not in _profiled_functions(collect())
        finally:
            thread.join()

    def test_profile_hook_is_uninstalled_on_exit(self):
        with profile_all_threads():
            pass
        # A thread started after the block must not trip the bootstrap.
        assert threading._profile_hook is None

    def test_print_top_formats_the_table(self):
        with profile_all_threads() as collect:
            _marker_main()
        text = print_top(collect(), limit=5)
        assert "cumulative" in text
        assert "ncalls" in text
