"""CLI error-path tests for ``repro trace`` and ``repro events replay``.

The satellite acceptance: pointing the tools at a missing metrics
directory or an unknown task id exits non-zero with a message that says
what to do, never a traceback or a silent empty print.
"""

import json

import pytest

from repro.cli import main
from repro.obs import MetricsRegistry, SpanCollector, dump_observability


@pytest.fixture
def export_dir(tmp_path):
    """A real observability export holding one traced task."""
    collector = SpanCollector()
    collector.begin("task-ok")
    for name, t in (("submit", 0.0), ("enqueue", 0.001), ("notify", 0.002),
                    ("pull", 0.003), ("exec", 0.004), ("result", 0.005),
                    ("ack", 0.006)):
        collector.record("task-ok", name, t, attempt=1)
    out = tmp_path / "metrics"
    dump_observability(out, [MetricsRegistry(prefix="d")], collector)
    return out


class TestTraceErrors:
    def test_missing_metrics_dir_exits_2_with_guidance(self, tmp_path, capsys):
        missing = tmp_path / "nowhere"
        assert main(["trace", "t-1", "--metrics", str(missing)]) == 2
        err = capsys.readouterr().err
        assert str(missing) in err
        assert "--metrics-out" in err  # tells the user how to produce one

    def test_dir_without_spans_file_exits_2_and_names_the_dir(self, tmp_path, capsys):
        empty = tmp_path / "metrics"
        empty.mkdir()
        assert main(["trace", "t-1", "--metrics", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "spans.jsonl" in err
        assert str(empty) in err

    def test_unknown_task_id_exits_1_and_names_the_task(self, export_dir, capsys):
        assert main(["trace", "task-unknown", "--metrics", str(export_dir)]) == 1
        err = capsys.readouterr().err
        assert "task-unknown" in err
        assert "no trace recorded" in err

    def test_known_task_id_exits_0_and_prints_the_chain(self, export_dir, capsys):
        assert main(["trace", "task-ok", "--metrics", str(export_dir)]) == 0
        out = capsys.readouterr().out
        for name in ("submit", "exec", "ack"):
            assert name in out

    def test_http_mode_unreachable_endpoint_exits_2(self, capsys):
        # Port 1 on localhost: connection refused, immediately.
        assert main(["trace", "t-1", "--http", "http://127.0.0.1:1"]) == 2
        err = capsys.readouterr().err
        assert "--http-port" in err


class TestEventsReplayErrors:
    def test_missing_log_exits_2_with_guidance(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["events", "replay", str(missing)]) == 2
        err = capsys.readouterr().err
        assert str(missing) in err
        assert "--events-out" in err

    def test_unparseable_log_exits_1(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not json\nalso not json\n")
        assert main(["events", "replay", str(garbage)]) == 1
        assert "no parseable events" in capsys.readouterr().err

    def test_valid_log_exits_0_with_summary(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        rows = [
            {"kind": "executor-register", "subject": "e-1",
             "t_mono": 1.0, "t_wall": 100.0, "attrs": {}},
            {"kind": "task-submit", "subject": "t-1",
             "t_mono": 1.1, "t_wall": 100.1, "attrs": {}},
            {"kind": "task-settle", "subject": "t-1",
             "t_mono": 1.6, "t_wall": 100.6, "attrs": {"outcome": "ok"}},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        assert main(["events", "replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "tasks submitted" in out
        assert "task-settle=1" in out
