"""Time-series store tests: rings, rates, junk filtering, convergence."""

import math

from repro.obs.timeseries import (
    DISPATCHER_SOURCE,
    RingSeries,
    TimeSeriesStore,
    efficiency_curve,
)


class TestRingSeries:
    def test_bounded_capacity_drops_oldest(self):
        series = RingSeries(capacity=3)
        for i in range(5):
            series.append(float(i), float(i * 10))
        assert len(series) == 3
        assert series.items() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert series.last() == (4.0, 40.0)

    def test_window_filters_by_newest_sample_time(self):
        series = RingSeries(capacity=10)
        for t in (0.0, 1.0, 2.0, 3.0):
            series.append(t, t)
        assert [t for t, _ in series.window(1.5)] == [2.0, 3.0]
        assert series.window(100.0) == series.items()


class TestIngest:
    def test_latest_reflects_newest_sample(self):
        store = TimeSeriesStore()
        store.ingest("e1", 1.0, {"busy": 1, "executed": 10})
        store.ingest("e1", 2.0, {"busy": 0, "executed": 25})
        latest = store.latest("e1")
        assert latest["busy"] == 0.0
        assert latest["executed"] == 25.0
        assert latest["_t"] == 2.0
        assert store.sources() == ["e1"]

    def test_junk_values_never_poison_the_store(self):
        store = TimeSeriesStore()
        store.ingest("e1", 1.0, {
            "ok": 3,
            "string": "nope",
            "nan": math.nan,
            "inf": math.inf,
            "bool": True,
            "list": [1, 2],
            42: 7,  # non-string key
        })
        latest = store.latest("e1")
        assert set(latest) == {"ok", "_t"}
        assert latest["ok"] == 3.0

    def test_all_junk_sample_counts_nothing(self):
        store = TimeSeriesStore()
        store.ingest("e1", 1.0, {"a": "x", "b": math.nan})
        assert store.samples_ingested == 0
        assert store.latest("e1") == {}

    def test_key_cap_bounds_hostile_samples(self):
        store = TimeSeriesStore()
        store.ingest("e1", 1.0, {f"k{i:03d}": i for i in range(100)})
        assert len(store.latest("e1")) == 32 + 1  # 32 keys + "_t"


class TestForget:
    def test_forget_removes_every_series_of_the_source(self):
        store = TimeSeriesStore()
        store.ingest("e1", 1.0, {"busy": 1})
        store.ingest("e2", 1.0, {"busy": 1})
        assert store.forget("e1") is True
        assert store.forget("e1") is False  # idempotent
        assert store.sources() == ["e2"]
        assert store.latest("e1") == {}
        assert store.sources_forgotten == 1


class TestRate:
    def test_counter_rate_over_window(self):
        store = TimeSeriesStore(window=10.0)
        for t, v in ((0.0, 0), (1.0, 100), (2.0, 300)):
            store.ingest("d", t, {"completed": v})
        assert store.rate("d", "completed") == 150.0

    def test_rate_needs_two_points(self):
        store = TimeSeriesStore()
        assert math.isnan(store.rate("d", "completed"))
        store.ingest("d", 1.0, {"completed": 5})
        assert math.isnan(store.rate("d", "completed"))

    def test_counter_reset_reports_nan_not_negative(self):
        store = TimeSeriesStore(window=10.0)
        store.ingest("d", 1.0, {"completed": 500})
        store.ingest("d", 2.0, {"completed": 3})  # source restarted
        assert math.isnan(store.rate("d", "completed"))


class TestClusterGauges:
    def test_utilization_and_dispatch_rate(self):
        store = TimeSeriesStore(window=10.0)
        store.ingest(DISPATCHER_SOURCE, 0.0, {
            "registered": 4, "busy": 3, "queued": 7, "completed": 0,
            "e2e_sum_s": 0.0, "exec_sum_s": 0.0, "e2e_count": 0,
        })
        store.ingest(DISPATCHER_SOURCE, 2.0, {
            "registered": 4, "busy": 3, "queued": 7, "completed": 100,
            "e2e_sum_s": 30.0, "exec_sum_s": 10.0, "e2e_count": 100,
        })
        cluster = store.cluster()
        assert cluster["utilization"] == 0.75
        assert cluster["dispatch_rate_tasks_per_s"] == 50.0
        assert cluster["queued"] == 7.0
        assert cluster["overhead_per_task_s"] == (30.0 - 10.0) / 100

    def test_gauges_are_nan_before_any_dispatcher_sample(self):
        store = TimeSeriesStore()
        cluster = store.cluster()
        assert math.isnan(cluster["utilization"])
        assert math.isnan(cluster["dispatch_rate_tasks_per_s"])
        assert math.isnan(cluster["overhead_per_task_s"])

    def test_overhead_clamps_clock_skew_to_zero(self):
        # exec_sum (executor clocks) can exceed e2e_sum (dispatcher
        # clock) by jitter; overhead must clamp at zero, not go
        # negative.
        store = TimeSeriesStore()
        store.ingest(DISPATCHER_SOURCE, 1.0, {
            "e2e_sum_s": 5.0, "exec_sum_s": 6.0, "e2e_count": 10,
        })
        assert store.overhead_per_task() == 0.0


class TestEfficiencyCurve:
    def test_shape_matches_the_paper_figure(self):
        curve = efficiency_curve(1.0, lengths=(1.0, 4.0, 32.0))
        assert curve["1s"] == 0.5
        assert curve["4s"] == 0.8
        # Longer tasks amortise the overhead: monotone, approaching 1.
        assert curve["1s"] < curve["4s"] < curve["32s"] < 1.0

    def test_nan_overhead_propagates(self):
        curve = efficiency_curve(math.nan)
        assert all(math.isnan(v) for v in curve.values())

    def test_zero_overhead_is_perfect_efficiency(self):
        assert set(efficiency_curve(0.0).values()) == {1.0}
