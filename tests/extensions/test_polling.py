"""Tests for the pure-pull (polling) executor."""

import pytest

from repro.config import FalkonConfig
from repro.core.dispatcher import SimDispatcher
from repro.extensions.polling import PollingExecutor
from repro.sim import Environment
from repro.types import TaskSpec


def make(n_executors=2, poll_interval=1.0, idle=None):
    from repro.core.policies import DistributedIdle

    env = Environment()
    dispatcher = SimDispatcher(env, FalkonConfig.paper_defaults())
    release = DistributedIdle(idle) if idle else None
    executors = [
        PollingExecutor(
            env, dispatcher, startup_delay=0.0, poll_interval=poll_interval,
            node=f"n{i}", release_policy=release,
        )
        for i in range(n_executors)
    ]
    return env, dispatcher, executors


def test_validation():
    env = Environment()
    dispatcher = SimDispatcher(env, FalkonConfig.paper_defaults())
    with pytest.raises(ValueError):
        PollingExecutor(env, dispatcher, poll_interval=0)


def test_polling_executes_all_tasks():
    env, dispatcher, executors = make(n_executors=2, poll_interval=0.5)
    dispatcher.accept_tasks_now(
        [TaskSpec.sleep(0.1, task_id=f"pl{i}") for i in range(20)]
    )
    env.run(until=dispatcher.completion_milestone(20))
    assert dispatcher.tasks_completed == 20
    assert sum(e.tasks_executed for e in executors) == 20


def test_poll_counters_track_empty_polls():
    env, dispatcher, executors = make(n_executors=1, poll_interval=1.0)
    env.run(until=10.5)
    (executor,) = executors
    assert executor.polls >= 10
    assert executor.empty_polls == executor.polls


def test_task_waits_up_to_one_interval():
    env, dispatcher, executors = make(n_executors=1, poll_interval=5.0)
    env.run(until=12.6)  # executor last polled at ~t=12.5 or so
    dispatcher.accept_tasks_now([TaskSpec.sleep(0, task_id="late")])
    env.run(until=dispatcher.completion_milestone(1))
    record = dispatcher.records[0]
    # The task waited for the next poll, not for a notification.
    assert 0.5 < record.timeline.queue_time <= 5.1


def test_idle_release_via_polling():
    env, dispatcher, executors = make(n_executors=1, poll_interval=1.0, idle=4.0)
    env.run()
    (executor,) = executors
    assert not executor.is_alive
    assert env.now == pytest.approx(4.0, abs=1.1)


def test_crash_during_poll_loop_is_clean():
    env, dispatcher, executors = make(n_executors=2, poll_interval=0.5)
    dispatcher.accept_tasks_now(
        [TaskSpec.sleep(1.0, task_id=f"pc{i}") for i in range(6)]
    )

    def saboteur():
        yield env.timeout(1.2)
        executors[0].crash()

    env.process(saboteur())
    env.run(until=dispatcher.completion_milestone(6))
    assert dispatcher.tasks_completed == 6
    assert dispatcher.registered_executors == 1
