"""Tests for coordinated all-at-once deallocation."""

import pytest

from repro.config import FalkonConfig
from repro.core.system import FalkonSystem
from repro.extensions import CoordinatedProvisioner
from repro.types import TaskSpec


class CapturingProvisioner(CoordinatedProvisioner):
    """Records every executor it creates (test observability)."""

    def __init__(self, *args, **kwargs) -> None:
        self.captured = []
        super().__init__(*args, **kwargs)

    def _default_factory(self, machine, **kwargs):
        executor = super()._default_factory(machine, **kwargs)
        self.captured.append(executor)
        return executor


def make_system(idle=20.0, max_executors=8):
    config = FalkonConfig.falkon_idle(idle, max_executors=max_executors)
    config.executors_per_node = 1
    system = FalkonSystem(config.validate(), cluster_nodes=32, processors_per_node=1)
    system.provisioner.stop()
    system.provisioner = CapturingProvisioner(
        system.env, system.dispatcher, system.gateway, config
    )
    return system


def sleep_tasks(n, seconds):
    return [TaskSpec.sleep(seconds, task_id=f"co{i:04d}") for i in range(n)]


def test_coordinated_completes_workload():
    system = make_system()
    result = system.run_workload(sleep_tasks(16, 10.0), bundle_size=16)
    assert result.completed == 16


def test_whole_allocation_released_at_once():
    system = make_system(idle=20.0)
    system.run_workload(sleep_tasks(8, 10.0), bundle_size=8)
    env = system.env
    env.run(until=env.now + 120.0)
    # Everything is gone...
    assert system.dispatcher.registered_executors == 0
    assert system.cluster.free_count() == 32
    # ...and the release was synchronized: all executors retired within
    # one coordinator check interval of each other.
    released = [e.released_at for e in system.provisioner.captured
                if e.released_at is not None]
    assert len(released) == 8
    assert max(released) - min(released) <= CoordinatedProvisioner.check_interval


def test_straggler_defers_whole_release():
    system = make_system(idle=20.0)
    env = system.env
    # Two quick tasks, one long straggler: idle executors must wait for
    # the straggler before anything is released.
    tasks = sleep_tasks(2, 5.0) + [TaskSpec.sleep(120.0, task_id="straggler")]
    result = system.run_workload(tasks, bundle_size=3)
    assert result.completed == 3
    env.run(until=env.now + 100.0)
    released = [e.released_at for e in system.provisioner.captured
                if e.released_at is not None]
    assert released, "pool eventually drains"
    # Nothing was released before the straggler finished (~120 s) plus
    # the idle window, even though two executors idled from ~5 s.
    straggler_end = max(r.timeline.completed for r in result.results)
    assert min(released) >= straggler_end + 20.0 - CoordinatedProvisioner.check_interval


def test_no_partial_release_before_idle_window():
    system = make_system(idle=500.0)
    env = system.env
    system.run_workload(sleep_tasks(4, 5.0), bundle_size=4)
    env.run(until=env.now + 200.0)
    # Idle window (500 s) not yet reached: the whole pool persists.
    assert system.dispatcher.registered_executors > 0
    assert all(e.released_at is None for e in system.provisioner.captured)


def test_fewer_or_equal_allocations_than_distributed():
    from repro.experiments.ablations import run_release_ablation

    rows = {r.mode: r for r in run_release_ablation(idle_seconds=60.0)}
    assert rows["coordinated"].allocations <= rows["distributed"].allocations
    assert rows["coordinated"].utilization < rows["distributed"].utilization
