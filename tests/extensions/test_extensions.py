"""Tests for the §6 future-work extensions."""

import pytest

from repro import FalkonConfig, FalkonSystem
from repro.cluster.filesystem import LocalDisk, SharedFileSystem
from repro.core.dispatcher import SimDispatcher
from repro.core.staging import StagingModel
from repro.extensions import (
    DataAwareExecutor,
    DataCache,
    Forwarder,
    PrefetchingExecutor,
)
from repro.sim import Environment
from repro.types import DataLocation, DataRef, TaskSpec


def sleep_tasks(n, seconds=0.0, prefix="x"):
    return [TaskSpec.sleep(seconds, task_id=f"{prefix}{i:05d}") for i in range(n)]


# ---------------------------------------------------------------- prefetch
def prefetch_system(n_executors):
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.provisioner.stop()
    executors = [
        PrefetchingExecutor(system.env, system.dispatcher, startup_delay=0.0)
        for _ in range(n_executors)
    ]
    return system, executors


def test_prefetch_improves_single_executor_rate():
    base = FalkonSystem(FalkonConfig.paper_defaults())
    base.static_pool(1)
    r_base = base.run_workload(sleep_tasks(200))

    system, _executors = prefetch_system(1)
    r_pref = system.run_workload(sleep_tasks(200))
    assert r_pref.completed == 200
    assert r_pref.throughput > 1.5 * r_base.throughput


def test_prefetch_all_tasks_complete_once():
    system, _ = prefetch_system(4)
    result = system.run_workload(sleep_tasks(300, seconds=0.05))
    assert result.completed == 300
    assert sorted(r.task_id for r in result.results) == sorted(
        f"x{i:05d}" for i in range(300)
    )
    assert all(r.attempts == 1 for r in result.results)


def test_prefetch_executor_crash_loses_nothing():
    system, executors = prefetch_system(2)
    env = system.env

    def saboteur():
        yield env.timeout(1.0)
        executors[0].crash()

    env.process(saboteur())
    result = system.run_workload(sleep_tasks(40, seconds=0.5))
    assert result.completed == 40


# ---------------------------------------------------------------- data cache
def test_datacache_lru_eviction():
    cache = DataCache(100)
    cache.insert("a", 40)
    cache.insert("b", 40)
    assert cache.lookup("a")       # refresh a
    cache.insert("c", 40)          # evicts b (LRU)
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.used_bytes == 80


def test_datacache_oversized_item_not_cached():
    cache = DataCache(10)
    cache.insert("huge", 100)
    assert "huge" not in cache
    assert cache.used_bytes == 0


def test_datacache_hit_rate():
    cache = DataCache(100)
    assert not cache.lookup("x")
    cache.insert("x", 10)
    assert cache.lookup("x")
    assert cache.hit_rate == 0.5


def test_datacache_validation():
    with pytest.raises(ValueError):
        DataCache(0)
    with pytest.raises(ValueError):
        DataCache(10).insert("a", -1)


def locality_workload(n_tasks, n_files, megabytes=32):
    """Tasks repeatedly reading a small set of shared files."""
    size = megabytes * 10**6
    return [
        TaskSpec(
            task_id=f"loc{i:05d}",
            command="analyze",
            duration=0.01,
            reads=(DataRef(f"file-{i % n_files}", size, DataLocation.SHARED),),
        )
        for i in range(n_tasks)
    ]


def run_locality(executor_cls, n_exec=4, caches=None, **executor_kwargs):
    env = Environment()
    shared = SharedFileSystem(env)
    local = LocalDisk(env)
    staging = StagingModel(shared=shared, local=local)
    dispatcher = SimDispatcher(env, FalkonConfig.paper_defaults())
    executors = []
    for i in range(n_exec):
        kwargs = dict(executor_kwargs)
        if caches is not None:
            kwargs["cache"] = caches[i]
        executors.append(
            executor_cls(
                env, dispatcher, startup_delay=0.0, staging=staging,
                node=f"n{i}", **kwargs,
            )
        )
    records = dispatcher.accept_tasks_now(locality_workload(64, 4))
    env.run(until=dispatcher.completion_milestone(64))
    return env.now, executors


def test_data_aware_caching_speeds_up_locality_workload():
    from repro.core.executor import SimExecutor

    t_plain, _ = run_locality(SimExecutor)
    caches = [DataCache(10**9) for _ in range(4)]
    t_cached, executors = run_locality(
        DataAwareExecutor, caches=caches, locality_wait=0.05
    )
    # Cached reads come off node-local disk instead of contended GPFS;
    # the win is bounded by the local disk becoming the new bottleneck.
    assert t_cached < 0.75 * t_plain
    assert sum(c.hits for c in caches) > 0


def test_data_aware_executor_validation():
    env = Environment()
    dispatcher = SimDispatcher(env, FalkonConfig.paper_defaults())
    with pytest.raises(ValueError):
        DataAwareExecutor(env, dispatcher, cache=DataCache(10), locality_wait=-1)


def test_data_aware_completes_without_staging():
    env = Environment()
    dispatcher = SimDispatcher(env, FalkonConfig.paper_defaults())
    executor = DataAwareExecutor(
        env, dispatcher, cache=DataCache(100), startup_delay=0.0, locality_wait=0.01
    )
    dispatcher.accept_tasks_now(sleep_tasks(10))
    env.run(until=dispatcher.completion_milestone(10))
    assert dispatcher.tasks_completed == 10


# ---------------------------------------------------------------- 3-tier
def build_tier(env, n_dispatchers, executors_each):
    from repro.core.executor import SimExecutor

    dispatchers = []
    for d in range(n_dispatchers):
        dispatcher = SimDispatcher(env, FalkonConfig.paper_defaults())
        for e in range(executors_each):
            SimExecutor(env, dispatcher, startup_delay=0.0, node=f"d{d}-n{e}")
        dispatchers.append(dispatcher)
    return dispatchers


def test_forwarder_balances_and_completes():
    env = Environment()
    dispatchers = build_tier(env, 3, 8)
    forwarder = Forwarder(env, dispatchers)
    result = forwarder.run_workload(sleep_tasks(600, prefix="f"), bundle_size=100)
    assert result.completed == 600
    counts = list(result.per_dispatcher.values())
    assert min(counts) > 0
    assert max(counts) - min(counts) <= 300  # roughly balanced


def test_forwarder_scales_aggregate_throughput():
    env1 = Environment()
    single = Forwarder(env1, build_tier(env1, 1, 64))
    r1 = single.run_workload(sleep_tasks(3000, prefix="a"))

    env4 = Environment()
    quad = Forwarder(env4, build_tier(env4, 4, 64))
    r4 = quad.run_workload(sleep_tasks(3000, prefix="b"))
    # Four dispatchers push well past the single-dispatcher 487/s cap.
    assert r4.throughput > 2.5 * r1.throughput


def test_forwarder_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Forwarder(env, [])
    dispatchers = build_tier(env, 1, 1)
    fwd = Forwarder(env, dispatchers)
    with pytest.raises(ValueError):
        next(fwd.route_bundle([]))
    with pytest.raises(ValueError):
        fwd.run_workload(sleep_tasks(1), bundle_size=0)


def test_producer_consumer_caching():
    """§4.2: "the importance of using local disk to cache data products
    written by one task and read by another" — a written product is a
    cache hit for the consumer on the same node."""
    env = Environment()
    shared = SharedFileSystem(env)
    local = LocalDisk(env)
    staging = StagingModel(shared=shared, local=local)
    dispatcher = SimDispatcher(env, FalkonConfig.paper_defaults())
    cache = DataCache(10**9)
    DataAwareExecutor(
        env, dispatcher, startup_delay=0.0, staging=staging,
        node="n0", cache=cache, locality_wait=0.01,
    )
    size = 10 * 10**6
    producer = TaskSpec(
        task_id="produce", command="make", duration=0.01,
        writes=(DataRef("product", size, DataLocation.SHARED),),
    )
    consumer = TaskSpec(
        task_id="consume", command="use", duration=0.01,
        reads=(DataRef("product", size, DataLocation.SHARED),),
    )
    dispatcher.accept_tasks_now([producer, consumer])
    env.run(until=dispatcher.completion_milestone(2))
    assert dispatcher.tasks_completed == 2
    # The consumer's read hit the cache (served from local disk).
    assert cache.hits == 1
    # The shared filesystem saw the write but never a read of it.
    assert shared.write_ops == 1
    assert shared.bytes_read == 0
