"""Endurance harness: fast machinery checks plus the real soak.

The unmarked tests keep the soak harness itself under tier-1 coverage
(a few thousand tasks, seconds).  The ``soak``-marked test is the
acceptance run from ROADMAP: at least one million tasks through a
journaled dispatcher with compaction cycling and chaos, every oracle
green, throughput and peak RSS recorded.  Deselected by default
(``addopts = -m 'not soak'``); opt in with ``pytest -m soak``.
"""

import json

import pytest

from repro.scenarios import run_soak


def test_soak_machinery_small_run(tmp_path):
    out = str(tmp_path / "BENCH_soak.json")
    result = run_soak(
        total_tasks=4_000,
        wave_size=1_000,
        executors=2,
        seed=3,
        pipeline_depth=16,
        poison_per_wave=1,
        churn_every_waves=2,
        retain_settled=500,
        journal_compact_every=800,
        out=out,
    )
    assert result.ok, result.oracles.summary()
    assert result.completed + result.failed == 4_000
    assert result.failed == result.dlq == 4  # one poison per wave
    assert result.journal_compactions > 0    # compaction actually cycled
    assert result.peak_rss_kb > 0
    with open(out) as fh:
        recorded = json.load(fh)
    assert recorded["total_tasks"] == 4_000
    assert recorded["oracles"]["ok"] is True
    assert recorded["throughput_tasks_per_s"] > 0
    assert len(result.wave_throughputs) == 4


def test_soak_is_seed_deterministic_in_workload_shape(tmp_path):
    """Same seed → same poison/churn schedule (the task stream itself
    is deterministic by construction).  Different totals reuse the same
    stream prefix, so the failure counts line up run to run."""
    kwargs = dict(total_tasks=2_000, wave_size=500, executors=2,
                  pipeline_depth=16, poison_per_wave=2, drop_rate=0.0,
                  duplicate_rate=0.0, churn_every_waves=0, out=None)
    a = run_soak(seed=11, **kwargs)
    b = run_soak(seed=11, **kwargs)
    assert a.ok and b.ok
    assert a.failed == b.failed == a.dlq == b.dlq


def test_soak_rejects_nonsense_sizes():
    with pytest.raises(ValueError):
        run_soak(total_tasks=0)


@pytest.mark.soak
def test_million_task_soak_with_chaos_and_compaction(tmp_path):
    """The acceptance run: >=1M tasks, compaction cycling, transport
    chaos, poison drip, periodic link kills — all oracles green and the
    benchmark record written."""
    out = str(tmp_path / "BENCH_soak.json")
    result = run_soak(total_tasks=1_000_000, out=out, progress=print)
    assert result.ok, result.oracles.summary()
    assert result.completed + result.failed == 1_000_000
    assert result.journal_compactions > 10
    assert result.throughput > 100  # sustained, not stalled
    with open(out) as fh:
        assert json.load(fh)["oracles"]["ok"] is True
