"""Unit tests for the invariant oracles over fabricated states.

Each oracle must catch its violation and stay quiet on a consistent
state — the replay harnesses are only as trustworthy as these checks.
"""

from types import SimpleNamespace

from repro.scenarios.oracles import (
    OracleReport,
    check_conservation,
    check_exactly_once,
    check_journal_consistency,
    check_no_stuck,
    check_sim_workload,
)


def stats(accepted=10, completed=9, failed=1, dlq_total=1):
    return SimpleNamespace(
        accepted=accepted, completed=completed, failed=failed,
        dlq_total=dlq_total,
    )


class FakeRecovered:
    def __init__(self, tasks, truncated=0):
        self.tasks = {t.task_id: t for t in tasks}
        self.truncated = truncated

    def pending(self):
        return [t for t in self.tasks.values() if not t.terminal]


def rec(task_id, terminal=True, in_dlq=False):
    return SimpleNamespace(task_id=task_id, terminal=terminal, in_dlq=in_dlq)


def test_conservation_passes_on_consistent_stats():
    report = OracleReport()
    check_conservation(report, submitted=10, stats=stats(), expected_poison=1)
    assert report.ok
    assert "conservation" in report.checked


def test_conservation_catches_lost_and_unquarantined_tasks():
    report = OracleReport()
    check_conservation(report, submitted=10, stats=stats(completed=8))
    assert not report.ok  # completed + failed != accepted

    report = OracleReport()
    check_conservation(report, submitted=10, stats=stats(dlq_total=0))
    assert not report.ok  # terminal failure bypassed the DLQ

    report = OracleReport()
    check_conservation(report, submitted=12, stats=stats())
    assert not report.ok  # accepted != submitted

    report = OracleReport()
    check_conservation(report, submitted=10, stats=stats(), expected_poison=3)
    assert not report.ok  # healthy task died


def test_exactly_once_flags_duplicates_losses_and_phantoms():
    ids = ["a", "b", "c"]
    report = OracleReport()
    check_exactly_once(report, ids, {"a": 1, "b": 1, "c": 1})
    assert report.ok

    report = OracleReport()
    check_exactly_once(report, ids, {"a": 2, "b": 1, "c": 0})
    details = "".join(str(v) for v in report.violations)
    assert "a settled 2" in details and "c settled 0" in details

    report = OracleReport()
    check_exactly_once(report, ids, {"a": 1, "b": 1, "c": 1, "ghost": 1})
    assert any("ghost" in str(v) for v in report.violations)


def test_no_stuck_reports_counts_and_truncates_long_lists():
    report = OracleReport()
    check_no_stuck(report, [])
    assert report.ok

    report = OracleReport()
    check_no_stuck(report, [f"t{i}" for i in range(8)])
    assert not report.ok
    assert "8 futures" in str(report.violations[0])
    assert "+3 more" in str(report.violations[0])


def test_journal_consistency_passes_on_agreement():
    recovered = FakeRecovered([rec("a"), rec("b", in_dlq=True)])
    report = OracleReport()
    check_journal_consistency(report, recovered, dlq_ids=["b"], accepted=2)
    assert report.ok


def test_journal_consistency_catches_dlq_mismatch_and_pending():
    recovered = FakeRecovered([rec("a"), rec("b", in_dlq=True)])
    report = OracleReport()
    check_journal_consistency(report, recovered, dlq_ids=[], accepted=2)
    assert any("DLQ mismatch" in str(v) for v in report.violations)

    recovered = FakeRecovered([rec("a", terminal=False)])
    report = OracleReport()
    check_journal_consistency(report, recovered, dlq_ids=[], accepted=1)
    assert any("pending" in str(v) for v in report.violations)


def test_journal_consistency_torn_records_and_pruning():
    recovered = FakeRecovered([rec("a")], truncated=2)
    report = OracleReport()
    check_journal_consistency(report, recovered, dlq_ids=[], accepted=1)
    assert any("torn" in str(v) for v in report.violations)

    # A pruned journal legitimately forgets settled tasks: only DLQ and
    # pending agreement are required.
    recovered = FakeRecovered([rec("b", in_dlq=True)])
    report = OracleReport()
    check_journal_consistency(
        report, recovered, dlq_ids=["b"], accepted=1000, pruned=True
    )
    assert report.ok


def test_sim_workload_and_report_shape():
    report = OracleReport()
    check_sim_workload(report, 5, completed=5, failed=0)
    assert report.ok

    check_sim_workload(report, 5, completed=3, failed=1)
    assert not report.ok
    shaped = report.to_dict()
    assert shaped["ok"] is False
    assert shaped["violations"][0]["oracle"] == "conservation"
    assert "conservation" in report.summary()
