"""The seed-determinism contract (docs/TESTING.md).

Two generators fed the same spec must produce byte-identical workloads,
identical fingerprints, and identical per-actor fault schedules; a
different seed must change the workload.  This is what makes "reproduce
with: repro scenarios run --preset X --seed N" an honest promise.
"""

import pytest

from repro.scenarios import PRESETS, ScenarioSpec, generate, preset


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_same_seed_byte_identical_workload(name):
    spec = preset(name, seed=1234)
    a = generate(spec)
    b = generate(spec)
    assert a.workload_bytes() == b.workload_bytes()
    assert a.fingerprint() == b.fingerprint()


def test_different_seed_different_workload():
    a = generate(preset("mixed", seed=1))
    b = generate(preset("mixed", seed=2))
    assert a.fingerprint() != b.fingerprint()


def test_fault_schedules_identical_across_runs():
    """Every actor's chaos timeline is a pure function of the scenario
    seed: fresh plans from two generations of the same spec hand every
    stable actor identity the same decision sequence."""
    spec = preset("churn", seed=77)
    plan_a = generate(spec).fault_plan()
    plan_b = generate(spec).fault_plan()
    assert plan_a is not None and plan_b is not None
    for actor in ("executor:exec-0001", "executor:exec-0002", "client:c-9"):
        assert plan_a.schedule(actor, 300) == plan_b.schedule(actor, 300)


def test_fault_streams_independent_per_actor():
    plan = generate(preset("churn", seed=77)).fault_plan()
    assert plan.schedule("executor:exec-0001", 300) != plan.schedule(
        "executor:exec-0002", 300
    )


def test_fault_plan_seed_differs_from_scenario_seed():
    scenario = generate(preset("churn", seed=77))
    assert scenario.fault_plan_seed() != 77  # split, not reused


def test_generation_covers_declared_mix():
    scenario = generate(preset("smoke", seed=5))
    spec = scenario.spec
    assert len(scenario.tasks) == spec.tasks
    assert scenario.poison_ids  # poison_fraction > 0
    assert scenario.dag_tasks   # dag_fraction > 0
    assert len(scenario.churn) == spec.churn_events
    # DAG diamonds are closed: every dependency id exists in the scenario.
    ids = {t.spec.task_id for t in scenario.tasks}
    for task in scenario.tasks:
        assert set(task.deps) <= ids
    # Poison never lands on a DAG member (DAG completion must not
    # depend on a task designed to fail).
    dag_ids = {t.spec.task_id for t in scenario.dag_tasks}
    assert not (scenario.poison_ids & dag_ids)


def test_workflow_subset_validates():
    wf = generate(preset("dag", seed=9)).workflow()
    assert len(wf) > 0


def test_spec_round_trips_through_dict():
    spec = preset("heavy-tail", seed=42)
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.canonical_json() == spec.canonical_json()


def test_spec_rejects_unknown_fields_and_bad_values():
    with pytest.raises(ValueError):
        ScenarioSpec.from_dict({"name": "x", "seed": 0, "warp_factor": 9})
    with pytest.raises(ValueError):
        ScenarioSpec(tasks=0).validate()
    with pytest.raises(ValueError):
        ScenarioSpec(runtime_dist="cauchy").validate()
    with pytest.raises(ValueError):
        ScenarioSpec(drop_rate=0.7, duplicate_rate=0.7).validate()
    with pytest.raises(ValueError):
        preset("no-such-preset")


def test_arrivals_are_monotonic_and_runtimes_capped():
    scenario = generate(preset("ramp", seed=3))
    arrivals = [t.arrival for t in scenario.tasks]
    assert arrivals == sorted(arrivals)
    cap = scenario.spec.runtime_cap
    assert all(t.spec.duration <= cap for t in scenario.tasks)
