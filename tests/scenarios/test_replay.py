"""Replay harness tests: small scenarios through both planes.

The live cases are sized to keep tier-1 fast while still crossing the
interesting machinery: DAG dependency pacing, poison → DLQ, transport
chaos, executor churn, and the post-run journal-consistency recovery
parse.
"""

import pytest

from repro.scenarios import generate, preset, replay_live, replay_sim, run_scenario


def test_sim_replay_mixed_scenario_passes_oracles():
    report = replay_sim(generate(preset("mixed", seed=11, tasks=120)))
    assert report.ok, report.oracles.summary()
    assert report.completed == 120
    assert report.plane == "sim"
    assert report.extras["sim_makespan"] > 0


def test_sim_replay_with_churn_still_completes_everything():
    spec = preset("churn", seed=4, tasks=100, executors=4)
    report = replay_sim(generate(spec))
    assert report.ok, report.oracles.summary()
    assert report.completed == 100


def test_live_replay_clean_scenario():
    spec = preset("mixed", seed=21, tasks=80, executors=2)
    report = replay_live(generate(spec), timeout=60.0)
    assert report.ok, report.oracles.summary()
    assert report.completed + report.failed == 80
    assert report.dlq == report.failed  # every failure is a poison task
    checked = set(report.oracles.checked)
    assert {"conservation", "exactly-once-visible", "no-stuck-futures",
            "journal-consistency"} <= checked


def test_live_replay_smoke_preset_with_chaos_and_churn():
    spec = preset("smoke", seed=13, tasks=150)
    scenario = generate(spec)
    report = replay_live(scenario, timeout=90.0)
    assert report.ok, report.oracles.summary()
    assert report.submitted == 150
    assert report.fingerprint == scenario.fingerprint()


def test_run_scenario_drives_both_planes():
    spec = preset("poison", seed=8, tasks=60, executors=2)
    reports = run_scenario(spec, timeout=60.0)
    assert [r.plane for r in reports] == ["sim", "live"]
    for report in reports:
        assert report.ok, f"{report.plane}: {report.oracles.summary()}"
    live = reports[1]
    assert live.dlq == len(generate(spec).poison_ids)


def test_run_scenario_rejects_unknown_plane():
    with pytest.raises(ValueError):
        run_scenario(preset("mixed", seed=0, tasks=10), planes=("warp",))


def test_live_replay_flight_out_dumps_every_component(tmp_path):
    import os

    from repro.obs.doctor import analyze
    from repro.obs.flight import load_flight_dumps

    flight_dir = str(tmp_path / "flight")
    spec = preset("mixed", seed=5, tasks=40, executors=2)
    report = replay_live(generate(spec), timeout=60.0, flight_dir=flight_dir)
    assert report.ok, report.oracles.summary()
    paths = report.extras["flight_dumps"]
    assert paths and all(os.path.exists(p) for p in paths)
    dumps = load_flight_dumps(flight_dir)
    components = {d["component"].split(":")[0] for d in dumps}
    # dispatcher + both executors + the client all flushed their rings.
    assert components == {"dispatcher", "executor", "client"}
    assert all(d["reason"] == "end" for d in dumps)
    # A clean run reads clean: no crash dumps, nothing unresolved.
    doctor = analyze(flight_dir)
    assert doctor["crashed"] == []
    assert doctor["resolutions"] == []
