"""Federated replay: seeded scenarios across a 2-shard LocalFederation.

Covers the two ISSUE acceptance behaviours that only exist on the
federated plane: chaos that includes killing a shard process state
(kill -9 semantics via ``simulate_crash``) followed by journal-backed
restart, and outcome determinism of the steal-enabled scheduler under
a fixed seed.
"""

import pytest

from repro.scenarios import generate, preset, replay_live_federated


def _outcome(report):
    """The seed-determined, order-independent outcome of a replay."""
    return (report.submitted, report.completed, report.failed, report.dlq)


def test_federated_smoke_with_shard_crash_passes_oracles(tmp_path):
    spec = preset("smoke", seed=13, tasks=120)
    scenario = generate(spec)
    report = replay_live_federated(scenario, shards=2,
                                   journal_root=str(tmp_path),
                                   timeout=120.0)
    assert report.ok, report.oracles.summary()
    assert report.submitted == 120
    assert report.plane == "live-fed2"
    # The chaotic preset must actually have exercised a shard kill.
    assert report.extras["shard_crashes"], "no shard was crashed"
    checked = set(report.oracles.checked)
    assert {"conservation", "exactly-once-visible", "no-stuck-futures",
            "journal-consistency"} <= checked


def test_federated_replay_rejects_single_shard():
    scenario = generate(preset("mixed", seed=1, tasks=10))
    with pytest.raises(ValueError):
        replay_live_federated(scenario, shards=1)


def test_work_stealing_outcome_is_deterministic_for_a_seed(tmp_path):
    """Same seed, two runs, crash disabled: identical settled outcomes.

    Steal timing is scheduler-dependent, so per-shard attribution may
    differ between runs; what must not differ is the client-visible
    outcome set (completions, failures, DLQ membership).
    """
    spec = preset("mixed", seed=29, tasks=80, executors=4)
    scenario = generate(spec)
    reports = [
        replay_live_federated(scenario, shards=2,
                              journal_root=str(tmp_path / f"run{i}"),
                              timeout=90.0, shard_crash=False)
        for i in range(2)
    ]
    for report in reports:
        assert report.ok, report.oracles.summary()
        assert not report.extras["shard_crashes"]
    assert _outcome(reports[0]) == _outcome(reports[1])
    assert reports[0].fingerprint == reports[1].fingerprint
