"""Seeded property tests for the two persistence codecs.

Stdlib-only fuzzing (``random.Random`` with fixed seeds — no hypothesis
dependency): generate adversarial specs/results/payloads and assert the
round-trip laws the journal and the wire rely on:

* ``parse_journal_line(journal_line(x)) == x`` for records and batches,
  and any single-character corruption is detected (CRC), never
  mis-parsed.
* ``strip_defaults`` + the wire parsers reconstruct the exact
  ``TaskSpec`` / ``TaskResult``, including unicode, large blobs, and
  defaults-stripped forms.
* ``FrameReader`` re-assembles signed frames fed in arbitrary chunkings
  and rejects any tampered signed body.
"""

import json
import random

import pytest

from repro.errors import SecurityError
from repro.live.journal import (
    RESULT_DEFAULTS,
    SPEC_DEFAULTS,
    journal_line,
    parse_journal_line,
    strip_defaults,
)
from repro.live.protocol import (
    result_from_dict,
    result_to_dict,
    task_from_dict,
    task_to_dict,
)
from repro.net.message import Message, MessageType, WIRE_CODES
from repro.net.wire import (
    FrameReader,
    decode_frame,
    encode_frame,
    encode_message_v4,
)
from repro.types import DataLocation, DataRef, TaskSpec

ROUNDS = 60

# Deliberately nasty strings: unicode planes, JSON metacharacters,
# newlines (the journal is line-framed), and long runs.
NASTY = [
    "",
    "plain",
    "späce-ü-ß",
    "日本語のタスク",
    "emoji-🧪🔥",
    'quote-"-and-\\backslash',
    "newline-\n-embedded",
    "tab-\t-and-\r",
    "null-\x00-byte" if False else "ctrl-\x1f",
    "x" * 2048,
]


def rand_text(rng: random.Random) -> str:
    base = rng.choice(NASTY)
    if rng.random() < 0.3:
        base += "".join(chr(rng.randrange(32, 0x2FA0)) for _ in range(rng.randrange(0, 16)))
    return base


def rand_spec(rng: random.Random) -> TaskSpec:
    refs = tuple(
        DataRef(f"ref-{i}-{rand_text(rng)[:8]}", rng.randrange(0, 10**9),
                rng.choice(list(DataLocation)))
        for i in range(rng.randrange(0, 3))
    )
    return TaskSpec(
        task_id=f"t-{rng.randrange(10**9)}",
        command=rng.choice(["sleep", "echo", "python:job", rand_text(rng) or "x"]),
        args=tuple(rand_text(rng) for _ in range(rng.randrange(0, 4))),
        working_dir=rng.choice([".", "/tmp", "rel/dir", rand_text(rng) or "."]),
        env=tuple((f"K{i}", rand_text(rng)) for i in range(rng.randrange(0, 3))),
        duration=rng.choice([0.0, rng.random() * 100]),
        reads=refs,
        writes=refs[:1],
        runtime_estimate=rng.choice([None, rng.random() * 10]),
        stage=rng.choice(["", "stage-1", rand_text(rng)]),
    )


def rand_result(rng: random.Random):
    from repro.types import TaskResult

    return TaskResult(
        task_id=f"t-{rng.randrange(10**9)}",
        return_code=rng.choice([0, 1, -9, 137]),
        stdout=rand_text(rng),
        stderr=rand_text(rng),
        executor_id=rng.choice(["", f"exec-{rng.randrange(100):04d}"]),
        error=rng.choice(["", rand_text(rng)]),
        attempts=rng.randrange(1, 20),
    )


# ---------------------------------------------------------------------------
# journal record codec
# ---------------------------------------------------------------------------
def test_journal_line_round_trips_single_records_and_batches():
    rng = random.Random(0xFA15E)
    for _ in range(ROUNDS):
        record = {
            "kind": rng.choice(["submit", "result", "acked", "dlq"]),
            "task_id": rand_text(rng),
            "n": rng.randrange(-(10**9), 10**9),
            "nested": {"unicode": rand_text(rng), "list": [1, None, True]},
        }
        assert parse_journal_line(journal_line(record)) == [record]
        batch = [dict(record, i=i) for i in range(rng.randrange(1, 6))]
        assert parse_journal_line(journal_line(batch)) == batch


def test_journal_line_detects_any_single_character_corruption():
    rng = random.Random(0xC0FFEE)
    line = journal_line({"kind": "submit", "task_id": "t-ünïcode-1", "a": [1, 2]})
    for _ in range(ROUNDS):
        pos = rng.randrange(len(line))
        flipped = chr((ord(line[pos]) + rng.randrange(1, 64)) % 0x7F or 0x21)
        corrupted = line[:pos] + flipped + line[pos:][1:]
        parsed = parse_journal_line(corrupted)
        # Either rejected outright, or (CRC-digit flip that still
        # matches? impossible: body unchanged ⇒ crc mismatch) — so:
        assert parsed is None or corrupted == line


def test_journal_line_rejects_torn_and_non_record_lines():
    line = journal_line({"kind": "submit"})
    for torn in (line[: len(line) // 2], line[9:], "", "zz", "0" * 8):
        assert parse_journal_line(torn) is None
    # Valid CRC over a non-object body must not produce records.
    import zlib

    body = json.dumps(["not-a-dict", 3])
    crc = zlib.crc32(body.encode()) & 0xFFFFFFFF
    assert parse_journal_line(f"{crc:08x} {body}") is None


def test_defaults_stripped_specs_round_trip_exactly():
    rng = random.Random(0x5EED)
    for _ in range(ROUNDS):
        spec = rand_spec(rng)
        wire = strip_defaults(task_to_dict(spec), SPEC_DEFAULTS)
        via_journal = parse_journal_line(journal_line(wire))[0]
        assert task_from_dict(via_journal) == spec


def test_defaults_stripped_results_round_trip_exactly():
    rng = random.Random(0xBEEF)
    for _ in range(ROUNDS):
        result = rand_result(rng)
        wire = strip_defaults(result_to_dict(result), RESULT_DEFAULTS)
        parsed = result_from_dict(parse_journal_line(journal_line(wire))[0])
        # timeline is dispatcher-side state, excluded from the codec
        assert result_to_dict(parsed) == result_to_dict(result)


# ---------------------------------------------------------------------------
# wire frame codec
# ---------------------------------------------------------------------------
KEY = b"property-test-shared-key"


def test_signed_frames_round_trip_through_chunked_reader():
    rng = random.Random(0xF00D)
    payloads = [
        {"type": "WORK", "tasks": [task_to_dict(rand_spec(rng))
                                   for _ in range(rng.randrange(1, 4))]}
        for _ in range(20)
    ]
    stream = b"".join(encode_frame(p, key=KEY) for p in payloads)
    for _ in range(10):
        reader = FrameReader(key=KEY)
        out = []
        i = 0
        while i < len(stream):
            step = rng.randrange(1, 97)
            out.extend(reader.feed(stream[i : i + step]))
            i += step
        assert out == payloads
        assert reader.pending_bytes == 0


def test_unsigned_frames_round_trip():
    rng = random.Random(0xD00D)
    for _ in range(ROUNDS):
        payload = {"s": rand_text(rng), "n": rng.random(), "l": [rand_text(rng)]}
        assert decode_frame(encode_frame(payload)) == payload


def test_tampered_signed_body_is_rejected():
    rng = random.Random(0xBAD)
    payload = {"type": "WORK", "task_id": "t-42", "secret": "ünïcode"}
    frame = encode_frame(payload, key=KEY)
    for _ in range(ROUNDS):
        pos = rng.randrange(4, len(frame))  # keep the length prefix intact
        delta = rng.randrange(1, 255)
        tampered = frame[:pos] + bytes([(frame[pos] + delta) % 256]) + frame[pos + 1 :]
        reader = FrameReader(key=KEY)
        try:
            out = list(reader.feed(tampered))
        except Exception:
            continue  # ProtocolError (bad JSON) or SecurityError: both fine
        # A flip that survives parsing must never verify as authentic
        # unless it produced the identical payload bytes.
        assert out == [payload] and tampered == frame


def test_wrong_key_never_verifies():
    frame = encode_frame({"a": 1}, key=KEY)
    reader = FrameReader(key=b"some-other-key")
    with pytest.raises(SecurityError):
        list(reader.feed(frame))


# ---------------------------------------------------------------------------
# wire-v4 binary codec
# ---------------------------------------------------------------------------
def rand_message(rng: random.Random) -> Message:
    msg_type = rng.choice(list(WIRE_CODES))
    payload: dict = {"s": rand_text(rng), "n": rng.randrange(-(10**6), 10**6)}
    if rng.random() < 0.5:
        payload["tasks"] = [task_to_dict(rand_spec(rng))
                            for _ in range(rng.randrange(1, 3))]
    trace = {"tid": f"tr-{rng.randrange(10**6):08x}", "sid": rng.randrange(1, 9)} \
        if rng.random() < 0.5 else None
    return Message(msg_type, sender=f"peer-{rng.randrange(100)}",
                   payload=payload, msg_id=rng.randrange(1, 10**9), trace=trace)


def _same_message(a: Message, b: Message) -> bool:
    return (a.type is b.type and a.sender == b.sender and a.msg_id == b.msg_id
            and a.payload == b.payload and a.trace == b.trace)


def test_v4_frames_reassemble_from_one_byte_chunks():
    rng = random.Random(0xB17E)
    messages = [rand_message(rng) for _ in range(12)]
    stream = b"".join(encode_message_v4(m, key=KEY) for m in messages)
    reader = FrameReader(key=KEY)
    out = []
    for i in range(len(stream)):  # worst-case TCP fragmentation: 1 byte/feed
        out.extend(reader.feed(stream[i : i + 1]))
    assert len(out) == len(messages)
    for got, want in zip(out, messages):
        assert isinstance(got, Message) and _same_message(got, want)
    assert reader.pending_bytes == 0


def test_v4_blob_frames_splice_payload_and_expose_raw_bytes():
    rng = random.Random(0xB10B)
    for _ in range(ROUNDS // 3):
        specs = [task_to_dict(rand_spec(rng)) for _ in range(rng.randrange(1, 4))]
        blob_list = [json.dumps(s, separators=(",", ":")).encode() for s in specs]
        scalar = json.dumps({"k": rand_text(rng)}, separators=(",", ":")).encode()
        message = Message(MessageType.WORK, sender="disp",
                          payload={"plain": 1}, msg_id=7)
        frame = encode_message_v4(message, key=KEY,
                                  blobs={"tasks": blob_list, "extra": scalar})
        got = decode_frame(frame, key=KEY)
        assert got.payload == {"plain": 1, "tasks": specs,
                               "extra": {"k": json.loads(scalar)["k"]}}
        # Raw bytes survive for re-forwarding without a re-encode.
        assert got.blobs == {"tasks": blob_list, "extra": scalar}


def test_v4_header_corruption_never_yields_a_forged_message():
    rng = random.Random(0xDEAD)
    message = rand_message(rng)
    frame = encode_message_v4(message, key=KEY)
    for _ in range(ROUNDS * 2):
        pos = rng.randrange(len(frame))
        delta = rng.randrange(1, 255)
        corrupted = frame[:pos] + bytes([(frame[pos] + delta) % 256]) + frame[pos + 1 :]
        reader = FrameReader(key=KEY)
        try:
            out = list(reader.feed(corrupted))
        except Exception:
            continue  # ProtocolError or SecurityError: rejected loudly, fine
        # No exception: the reader may be waiting for more bytes of a
        # (corrupt) longer frame, but it must never deliver a message
        # that differs from what was signed.
        assert all(isinstance(m, Message) and _same_message(m, message)
                   for m in out)
        assert not out or corrupted == frame


def test_v4_wrong_key_and_unsigned_on_keyed_channel_rejected():
    message = rand_message(random.Random(0x4242))
    signed = encode_message_v4(message, key=KEY)
    with pytest.raises(SecurityError):
        list(FrameReader(key=b"not-the-key").feed(signed))
    unsigned = encode_message_v4(message)
    with pytest.raises(SecurityError):
        list(FrameReader(key=KEY).feed(unsigned))
    # And the inverse: a signed frame on an unkeyed channel is an error,
    # not silently-trusted data.
    with pytest.raises(SecurityError):
        list(FrameReader().feed(signed))


def test_v4_oversized_frame_resyncs_at_the_next_boundary():
    import struct

    from repro.net.wire import MAX_FRAME_BYTES, V4_MAGIC

    oversized = MAX_FRAME_BYTES + 1
    bad_header = struct.pack(">BBBBI", V4_MAGIC, 4, 1, 0, oversized)
    reader = FrameReader()
    with pytest.raises(Exception):
        list(reader.feed(bad_header))
    # Discard exactly the advertised body (fed in reused 8 MiB chunks so
    # the test never holds the full 64 MiB) ...
    junk = bytes(8 * 1024 * 1024)
    remaining = oversized
    while remaining > 0:
        chunk = junk if remaining >= len(junk) else junk[:remaining]
        assert list(reader.feed(chunk)) == []
        remaining -= len(chunk)
    # ... then the very next frame parses cleanly.
    message = rand_message(random.Random(0x0F))
    out = list(reader.feed(encode_message_v4(message)))
    assert len(out) == 1 and _same_message(out[0], message)
    assert reader.pending_bytes == 0


def test_v4_unknown_flags_resync_preserves_following_frames():
    import struct

    from repro.net.wire import V4_MAGIC

    body = b"\x00" * 10
    bad = struct.pack(">BBBBI", V4_MAGIC, 4, 1, 0x80, len(body)) + body
    good = rand_message(random.Random(0x77))
    reader = FrameReader()
    with pytest.raises(Exception):
        list(reader.feed(bad + encode_message_v4(good)))
    out = list(reader.feed(b""))
    assert len(out) == 1 and _same_message(out[0], good)


def test_mixed_json_and_v4_frames_interleave_on_one_reader():
    rng = random.Random(0x3141)
    expected: list = []
    stream = b""
    for _ in range(30):
        if rng.random() < 0.5:
            payload = {"kind": "json", "s": rand_text(rng), "n": rng.random()}
            stream += encode_frame(payload, key=KEY)
            expected.append(payload)
        else:
            message = rand_message(rng)
            stream += encode_message_v4(message, key=KEY)
            expected.append(message)
    for _ in range(5):
        reader = FrameReader(key=KEY)
        out = []
        i = 0
        while i < len(stream):
            step = rng.randrange(1, 129)
            out.extend(reader.feed(stream[i : i + step]))
            i += step
        assert len(out) == len(expected)
        for got, want in zip(out, expected):
            if isinstance(want, Message):
                assert isinstance(got, Message) and _same_message(got, want)
            else:
                assert got == want
        assert reader.pending_bytes == 0
