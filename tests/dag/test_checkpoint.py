"""Tests for Swift-style workflow checkpoint/restart."""

import pytest

from repro import FalkonConfig, FalkonSystem
from repro.dag import FalkonProvider, Workflow, WorkflowCheckpoint, WorkflowEngine
from repro.types import TaskResult, TaskSpec


def chain_workflow(n=6, duration=1.0):
    wf = Workflow("chain")
    prev = []
    for i in range(n):
        wf.add_task(TaskSpec(f"c{i}", duration=duration, stage=f"s{i}"), after=prev)
        prev = [f"c{i}"]
    return wf


def engine_with_pool(executors=2):
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(executors)
    return system, WorkflowEngine(system.env, FalkonProvider(system.env, system.dispatcher))


def test_checkpoint_records_only_successes():
    cp = WorkflowCheckpoint()
    cp.record(TaskResult("good"))
    cp.record(TaskResult("bad", return_code=1))
    assert "good" in cp and "bad" not in cp
    assert len(cp) == 1
    assert cp.result("good").ok
    assert cp.result("missing") is None


def test_checkpoint_json_roundtrip(tmp_path):
    cp = WorkflowCheckpoint()
    cp.record(TaskResult("a", stdout="out", executor_id="e1"))
    cp.record(TaskResult("b"))
    path = str(tmp_path / "restart.json")
    cp.save(path)
    loaded = WorkflowCheckpoint.load(path)
    assert loaded.completed_ids() == {"a", "b"}
    assert loaded.result("a").stdout == "out"


def test_restart_skips_completed_tasks():
    # First run populates the checkpoint fully.
    system1, engine1 = engine_with_pool()
    cp = WorkflowCheckpoint()
    r1 = engine1.run_to_completion(chain_workflow(), checkpoint=cp)
    assert r1.ok
    assert len(cp) == 6

    # Second run with the full checkpoint executes nothing.
    system2, engine2 = engine_with_pool()
    r2 = engine2.run_to_completion(chain_workflow(), checkpoint=cp)
    assert r2.ok
    assert r2.makespan == 0.0
    assert system2.dispatcher.tasks_accepted == 0


def test_partial_checkpoint_resumes_midway():
    # Pre-record the first three chain links.
    cp = WorkflowCheckpoint()
    for i in range(3):
        cp.record(TaskResult(f"c{i}"))

    system, engine = engine_with_pool()
    result = engine.run_to_completion(chain_workflow(duration=2.0), checkpoint=cp)
    assert result.ok
    # Only the remaining three tasks ran: ~3 x 2 s, not ~6 x 2 s.
    assert result.makespan == pytest.approx(6.0, abs=1.0)
    assert system.dispatcher.tasks_accepted == 3
    # The checkpoint now covers everything.
    assert len(cp) == 6


def test_checkpoint_entries_outside_workflow_ignored():
    cp = WorkflowCheckpoint()
    cp.record(TaskResult("foreign-task"))
    system, engine = engine_with_pool()
    result = engine.run_to_completion(chain_workflow(n=2), checkpoint=cp)
    assert result.ok
    assert len(result.results) == 2


def test_failure_then_restart_end_to_end():
    """Simulated outage: the first run fails midway (a chain task dies,
    retries exhausted, dependents skipped); the restart completes only
    the remainder."""
    cp = WorkflowCheckpoint()
    done_first = 0
    for seed in range(100):
        trial = WorkflowCheckpoint()
        system1 = FalkonSystem(FalkonConfig.paper_defaults(max_retries=0), seed=seed)
        system1.static_pool(1, failure_rate=0.35)
        engine1 = WorkflowEngine(
            system1.env, FalkonProvider(system1.env, system1.dispatcher)
        )
        r1 = engine1.run_to_completion(chain_workflow(), checkpoint=trial)
        if not r1.ok and 1 <= len(trial) < 6:
            cp, done_first = trial, len(trial)
            break
    assert 1 <= done_first < 6, "no seed produced a mid-chain failure"

    system2, engine2 = engine_with_pool()
    r2 = engine2.run_to_completion(chain_workflow(), checkpoint=cp)
    assert r2.ok
    assert system2.dispatcher.tasks_accepted == 6 - done_first
