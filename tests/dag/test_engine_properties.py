"""Property-based tests for the workflow engine on random DAGs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FalkonConfig, FalkonSystem
from repro.dag import FalkonProvider, Workflow, WorkflowEngine
from repro.types import TaskSpec


@st.composite
def random_dags(draw):
    """A random DAG: each task may depend on any earlier tasks (so the
    graph is acyclic by construction)."""
    n = draw(st.integers(1, 25))
    durations = draw(
        st.lists(st.floats(0.0, 3.0), min_size=n, max_size=n)
    )
    edges = []
    for i in range(n):
        if i == 0:
            edges.append([])
            continue
        k = draw(st.integers(0, min(3, i)))
        deps = draw(
            st.lists(st.integers(0, i - 1), min_size=k, max_size=k, unique=True)
        )
        edges.append(deps)
    return durations, edges


def build_workflow(durations, edges):
    wf = Workflow("random")
    for i, (duration, deps) in enumerate(zip(durations, edges)):
        wf.add_task(
            TaskSpec(f"r{i}", duration=duration, stage=f"s{i % 3}"),
            after=[f"r{d}" for d in deps],
        )
    return wf


@given(random_dags(), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_random_dags_complete_and_respect_dependencies(dag, executors):
    durations, edges = dag
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(executors)
    engine = WorkflowEngine(system.env, FalkonProvider(system.env, system.dispatcher))
    result = engine.run_to_completion(build_workflow(durations, edges))

    assert result.ok
    assert len(result.results) == len(durations)
    # Dependency ordering holds in the timelines.
    for i, deps in enumerate(edges):
        child = result.results[f"r{i}"].timeline
        for d in deps:
            parent = result.results[f"r{d}"].timeline
            assert parent.completed <= child.started + 1e-9
    # Makespan bounds: at least the critical path, at most serial total.
    wf = build_workflow(durations, edges)
    critical = wf.ideal_makespan(10**9)
    assert result.makespan >= critical - 1e-6
    # Generous upper bound: serial execution plus per-task overhead.
    assert result.makespan <= sum(durations) + 0.2 * len(durations) + 1.0


@given(random_dags())
@settings(max_examples=20, deadline=None)
def test_checkpointed_rerun_executes_nothing(dag):
    from repro.dag import WorkflowCheckpoint

    durations, edges = dag
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(4)
    engine = WorkflowEngine(system.env, FalkonProvider(system.env, system.dispatcher))
    checkpoint = WorkflowCheckpoint()
    first = engine.run_to_completion(build_workflow(durations, edges), checkpoint=checkpoint)
    assert first.ok

    system2 = FalkonSystem(FalkonConfig.paper_defaults())
    system2.static_pool(4)
    engine2 = WorkflowEngine(system2.env, FalkonProvider(system2.env, system2.dispatcher))
    second = engine2.run_to_completion(build_workflow(durations, edges), checkpoint=checkpoint)
    assert second.ok
    assert second.makespan == 0.0
    assert system2.dispatcher.tasks_accepted == 0
