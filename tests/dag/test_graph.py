"""Unit tests for the workflow DAG."""

import pytest

from repro.dag import Workflow
from repro.errors import WorkflowError
from repro.types import TaskSpec


def spec(task_id, duration=1.0, stage=""):
    return TaskSpec(task_id=task_id, duration=duration, stage=stage)


def chain(n):
    wf = Workflow("chain")
    prev = []
    for i in range(n):
        wf.add_task(spec(f"t{i}"), after=prev)
        prev = [f"t{i}"]
    return wf


def test_add_and_query():
    wf = Workflow()
    wf.add_task(spec("a"))
    wf.add_task(spec("b"), after=["a"])
    assert len(wf) == 2
    assert "a" in wf and "c" not in wf
    assert wf.node("b").deps == ("a",)
    assert wf.dependents("a") == ["b"]
    assert [n.task_id for n in wf.roots()] == ["a"]


def test_duplicate_id_rejected():
    wf = Workflow()
    wf.add_task(spec("a"))
    with pytest.raises(WorkflowError):
        wf.add_task(spec("a"))


def test_unknown_dependency_caught_by_validate():
    wf = Workflow()
    wf.add_task(spec("a"), after=["ghost"])
    with pytest.raises(WorkflowError, match="unknown"):
        wf.validate()


def test_cycle_detection():
    wf = Workflow()
    wf.add_task(spec("a"), after=["b"])
    wf.add_task(spec("b"), after=["a"])
    with pytest.raises(WorkflowError, match="cycle"):
        wf.validate()


def test_topological_order_respects_deps():
    wf = Workflow()
    wf.add_task(spec("a"))
    wf.add_task(spec("b"), after=["a"])
    wf.add_task(spec("c"), after=["a"])
    wf.add_task(spec("d"), after=["b", "c"])
    order = [n.task_id for n in wf.topological_order()]
    assert order.index("a") < order.index("b")
    assert order.index("a") < order.index("c")
    assert order.index("b") < order.index("d")
    assert order.index("c") < order.index("d")


def test_stages_grouping():
    wf = Workflow()
    wf.add_task(spec("a", stage="one"))
    wf.add_task(spec("b", stage="two"), after=["a"])
    wf.add_task(spec("c", stage="one"))
    stages = wf.stages()
    assert list(stages) == ["one", "two"]
    assert [n.task_id for n in stages["one"]] == ["a", "c"]


def test_total_cpu_seconds():
    wf = chain(5)
    assert wf.total_cpu_seconds() == 5.0


def test_ideal_makespan_chain_is_serial():
    wf = chain(10)
    assert wf.ideal_makespan(4) == pytest.approx(10.0)


def test_ideal_makespan_parallel_divides():
    wf = Workflow()
    for i in range(8):
        wf.add_task(spec(f"p{i}", duration=3.0))
    assert wf.ideal_makespan(4) == pytest.approx(6.0)
    assert wf.ideal_makespan(8) == pytest.approx(3.0)
    with pytest.raises(ValueError):
        wf.ideal_makespan(0)


def test_ideal_makespan_empty():
    assert Workflow().ideal_makespan(4) == 0.0
