"""Workflow engine + provider integration tests."""

import pytest

from repro import FalkonConfig, FalkonSystem
from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.dag import (
    ClusteredGramProvider,
    FalkonProvider,
    GramProvider,
    Workflow,
    WorkflowEngine,
)
from repro.lrm import Gram4Gateway, make_pbs
from repro.sim import Environment
from repro.types import TaskSpec


def diamond(durations=(1.0, 2.0, 3.0, 1.0)):
    wf = Workflow("diamond")
    wf.add_task(TaskSpec("a", duration=durations[0], stage="s1"))
    wf.add_task(TaskSpec("b", duration=durations[1], stage="s2"), after=["a"])
    wf.add_task(TaskSpec("c", duration=durations[2], stage="s2"), after=["a"])
    wf.add_task(TaskSpec("d", duration=durations[3], stage="s3"), after=["b", "c"])
    return wf


def falkon_engine(executors=4):
    system = FalkonSystem(FalkonConfig.paper_defaults())
    system.static_pool(executors)
    provider = FalkonProvider(system.env, system.dispatcher)
    return system, WorkflowEngine(system.env, provider)


def test_falkon_provider_runs_diamond():
    system, engine = falkon_engine()
    result = engine.run_to_completion(diamond())
    assert result.ok
    assert len(result.results) == 4
    # Critical path: a(1) + c(3) + d(1) = 5 plus small overheads.
    assert result.makespan == pytest.approx(5.0, abs=0.5)


def test_dependencies_respected_in_time():
    system, engine = falkon_engine()
    result = engine.run_to_completion(diamond())
    tl = {tid: r.timeline for tid, r in result.results.items()}
    assert tl["a"].completed <= tl["b"].started
    assert tl["a"].completed <= tl["c"].started
    assert tl["b"].completed <= tl["d"].started
    assert tl["c"].completed <= tl["d"].started


def test_parallel_branches_overlap():
    system, engine = falkon_engine()
    result = engine.run_to_completion(diamond())
    tl = {tid: r.timeline for tid, r in result.results.items()}
    # b and c run concurrently on different executors.
    assert tl["b"].started < tl["c"].completed
    assert tl["c"].started < tl["b"].completed


def test_stage_elapsed_accounts_whole_makespan():
    system, engine = falkon_engine()
    result = engine.run_to_completion(diamond())
    elapsed = result.stage_elapsed()
    assert set(elapsed) == {"s1", "s2", "s3"}
    assert sum(elapsed.values()) == pytest.approx(result.makespan, rel=1e-6)


def test_failed_dependency_skips_dependents():
    system = FalkonSystem(FalkonConfig.paper_defaults(max_retries=0), seed=3)
    system.static_pool(2, failure_rate=1.0)
    engine = WorkflowEngine(system.env, FalkonProvider(system.env, system.dispatcher))
    result = engine.run_to_completion(diamond())
    assert not result.ok
    assert not result.results["a"].ok
    assert "dependency" in result.results["d"].error


def test_wide_fanout_through_falkon():
    wf = Workflow("fanout")
    wf.add_task(TaskSpec("root", duration=0.5, stage="root"))
    for i in range(100):
        wf.add_task(TaskSpec(f"leaf{i}", duration=1.0, stage="leaf"), after=["root"])
    system, engine = falkon_engine(executors=50)
    result = engine.run_to_completion(wf)
    assert result.ok
    # 100 leaves on 50 executors: two waves.
    assert result.makespan == pytest.approx(0.5 + 2.0, abs=0.5)


def gram_setup(nodes=16):
    env = Environment()
    cluster = Cluster(env, ClusterSpec(name="c", nodes=nodes, node=NodeSpec()))
    gateway = Gram4Gateway(env, make_pbs(env, cluster))
    return env, gateway


def test_gram_provider_runs_chain_slowly():
    env, gateway = gram_setup()
    engine = WorkflowEngine(env, GramProvider(env, gateway))
    wf = Workflow("pair")
    wf.add_task(TaskSpec("x", duration=5.0, stage="s"))
    wf.add_task(TaskSpec("y", duration=5.0, stage="s"), after=["x"])
    result = engine.run_to_completion(wf)
    assert result.ok
    # Each task pays GRAM4 pre/post overhead (~36 s) plus PBS latency.
    assert result.makespan > 80.0


def test_clustered_provider_amortizes_overhead():
    # Paper-like conditions (§5.1): many small tasks, 8 processors.
    env1, gw1 = gram_setup(nodes=8)
    per_task = WorkflowEngine(env1, GramProvider(env1, gw1))
    wf1 = Workflow("w1")
    for i in range(64):
        wf1.add_task(TaskSpec(f"t{i}", duration=2.0, stage="s"))
    r1 = per_task.run_to_completion(wf1)

    env2, gw2 = gram_setup(nodes=8)
    clustered = WorkflowEngine(env2, ClusteredGramProvider(env2, gw2, clusters=8))
    wf2 = Workflow("w2")
    for i in range(64):
        wf2.add_task(TaskSpec(f"t{i}", duration=2.0, stage="s"))
    r2 = clustered.run_to_completion(wf2)

    assert r1.ok and r2.ok
    assert r2.makespan < r1.makespan / 2  # clustering wins big


def test_clustered_provider_validates():
    env, gw = gram_setup()
    with pytest.raises(ValueError):
        ClusteredGramProvider(env, gw, clusters=0)


def test_empty_workflow_completes_immediately():
    system, engine = falkon_engine()
    result = engine.run_to_completion(Workflow("empty"))
    assert result.ok
    assert result.makespan == 0.0
