"""Unit tests for FalkonConfig validation and presets."""

import math

import pytest

from repro.config import (
    AcquisitionPolicyName,
    FalkonConfig,
    ReleasePolicyName,
    SecurityMode,
)
from repro.errors import ConfigError


def test_paper_defaults_valid():
    cfg = FalkonConfig.paper_defaults()
    assert cfg.security is SecurityMode.NONE
    assert cfg.client_bundling and cfg.piggyback
    assert cfg.acquisition_policy is AcquisitionPolicyName.ALL_AT_ONCE
    assert cfg.bundle_size == 300


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(max_retries=-1),
        dict(replay_timeout=0.0),
        dict(bundle_size=0),
        dict(min_executors=5, max_executors=2),
        dict(min_executors=-1),
        dict(executors_per_node=0),
        dict(idle_release_time=0.0),
        dict(allocation_lease=-5),
        dict(provisioner_poll_interval=0),
        dict(notification_threads=0),
        dict(executor_bundling=True, client_bundling=False),
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ConfigError):
        FalkonConfig(**kwargs).validate()


def test_falkon_idle_preset_finite():
    cfg = FalkonConfig.falkon_idle(60.0)
    assert cfg.idle_release_time == 60.0
    assert cfg.release_policy is ReleasePolicyName.DISTRIBUTED_IDLE
    assert cfg.max_executors == 32


def test_falkon_idle_preset_infinite_pins_executors():
    cfg = FalkonConfig.falkon_idle(math.inf, max_executors=32)
    assert cfg.release_policy is ReleasePolicyName.NEVER
    assert cfg.min_executors == 32
    assert math.isinf(cfg.idle_release_time)


def test_validate_returns_self():
    cfg = FalkonConfig()
    assert cfg.validate() is cfg
