#!/usr/bin/env bash
# Repo verify gate: lint, tier-1 tests, and a live-plane throughput smoke.
#
# Usage: scripts/verify.sh [--quick]
#   --quick  skip the benchmark smoke run (lint + tier-1 only)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== compileall (syntax gate) =="
python -m compileall -q src tests benchmarks

# Lint with ruff when the container has it; the image does not ship
# it by default and the gate must not fail on a missing tool.
if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks
elif python -c "import ruff" >/dev/null 2>&1; then
    echo "== ruff check (module) =="
    python -m ruff check src tests benchmarks
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== tier-1 tests =="
python -m pytest -x -q

# Dispatch-throughput gate: fails loudly on a >20% regression against
# the recorded baseline (BENCH_baseline.json; created on first run).
echo "== dispatch bench gate =="
python -m repro bench --quick

# Telemetry overhead gate: the live telemetry plane (heartbeat-carried
# stats + HTTP status surface) must cost < 5% of sleep-0 throughput.
# Paired interleaved runs; the measurement lands in BENCH_telemetry.json.
echo "== telemetry overhead gate =="
python -m repro bench --quick --telemetry

if [[ "${1:-}" != "--quick" ]]; then
    echo "== Figure 3 throughput smoke =="
    python -m pytest benchmarks/test_fig3_throughput.py -q
fi

echo "verify OK"
