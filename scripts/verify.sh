#!/usr/bin/env bash
# Repo verify gate: lint, tier-1 tests, and a live-plane throughput smoke.
#
# Usage: scripts/verify.sh [--quick]
#   --quick  skip the benchmark smoke run (lint + tier-1 only)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== compileall (syntax gate) =="
python -m compileall -q src tests benchmarks

# Lint with ruff when the container has it; the image does not ship
# it by default and the gate must not fail on a missing tool.
if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks
elif python -c "import ruff" >/dev/null 2>&1; then
    echo "== ruff check (module) =="
    python -m ruff check src tests benchmarks
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== tier-1 tests =="
python -m pytest -x -q

# Dispatch-throughput gate: fails loudly on a >20% regression against
# the recorded baseline (BENCH_baseline.json).  A missing baseline is
# an error, not a skip: `repro bench` would silently record a fresh
# baseline and pass, which is exactly how a regression sneaks through
# a wiped checkout.  Record one deliberately instead.
echo "== dispatch bench gate (wire v4 binary) =="
if [[ ! -f BENCH_baseline.json ]]; then
    echo "ERROR: BENCH_baseline.json is missing — the bench gate has nothing to compare against." >&2
    echo "Record a baseline first:  PYTHONPATH=src python -m repro bench --quick --update-baseline" >&2
    exit 1
fi
python -m repro bench --quick --wire binary

# The JSON path stays first-class: v1-v3 peers negotiate down to it,
# so it gets its own regression gate against the same baseline.  The
# wider tolerance absorbs the measured v4-over-JSON framing delta
# (~10%, docs/PERFORMANCE.md) on top of ordinary host noise.
echo "== dispatch bench gate (wire JSON fallback) =="
python -m repro bench --quick --wire json --tolerance 0.35

# IOLoop sharding microbench: echoed frames/s with 1 vs 4 selector
# loops, recorded under "ioloop_scaling" in BENCH_dispatch.json.
# Informational (no ratio gate): on a one-core host the ratio is
# honestly <= 1 (docs/PERFORMANCE.md, "Multi-core I/O").
echo "== ioloop scaling microbench =="
python -m repro bench --quick --io-microbench --io-threads 4

# Telemetry overhead gate: the live telemetry plane (heartbeat-carried
# stats + HTTP status surface) must cost < 5% of sleep-0 throughput.
# Paired interleaved runs; the measurement lands in BENCH_telemetry.json.
# (Self-measuring A/B — no baseline file to lose.)
echo "== telemetry overhead gate =="
python -m repro bench --quick --telemetry

# Flight-recorder overhead gate: the recorder + stall watchdogs
# stacked on the full telemetry plane must stay inside the same 5%
# budget — no separate allowance.  Same interleaved A/B harness; the
# measurement merges into BENCH_telemetry.json under "flight".
echo "== flight recorder overhead gate =="
python -m repro bench --quick --flight

# Journal overhead gate: crash-safe journalling (docs/RELIABILITY.md)
# must cost < 10% of sleep-0 throughput.  Paired interleaved rounds,
# gated on the best adjacent pair; lands in BENCH_journal.json.
echo "== journal overhead gate =="
python -m repro bench --quick --journal

# Shard-scaling gate: 2 dispatcher shards behind a ShardRouter must
# deliver >= 1.5x the 1-shard aggregate capacity on fixed-duration
# tasks (docs/API.md, "Benchmark methodology"); the measurement
# accumulates under "shard_scaling" in BENCH_dispatch.json.
echo "== shard scaling gate =="
python -m repro bench --quick --shards 2

# Scenario oracle gate: the ~30 s seeded mixed workload (heavy-tailed
# runtimes, bursts, DAGs, poison, chaos, churn) replayed through the
# sim AND live planes; exits non-zero if any invariant oracle —
# conservation, exactly-once-visible, no stuck futures, journal/DLQ
# consistency — is violated (docs/TESTING.md).
echo "== scenario oracle gate =="
python -m repro scenarios run --smoke

# Federated scenario oracle gate: the same smoke seed replayed across
# a 2-shard federation, including a mid-run shard kill -9 + restart;
# the oracles must hold from the client's vantage (docs/PROTOCOL.md,
# "Federation (wire v3)").
echo "== federated scenario oracle gate =="
python -m repro scenarios run --smoke --shards 2

if [[ "${1:-}" != "--quick" ]]; then
    echo "== Figure 3 throughput smoke =="
    python -m pytest benchmarks/test_fig3_throughput.py -q
fi

echo "verify OK"
